// Storage fault injection and graceful degradation tests:
//   - the injector's fault schedule is a pure function of (seed, config);
//   - the buffer pool turns invalid page ids into kInternal, injected I/O
//     errors into kIoError (after bounded retries), and corruption into
//     kDataLoss — never a crash, and never corrupted durable state;
//   - B-tree structural validation rejects corrupted nodes (flipped key
//     bytes, out-of-range child ids) as kDataLoss;
//   - per-statement limits (page budget, row limit, cancel flag, deadline)
//     abort cleanly and leave the same Database instance fully usable;
//   - the fault-injection fuzz protocol itself is deterministic per seed.
#include "rss/fault_injector.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "db/database.h"
#include "harness/fuzz_session.h"
#include "rss/btree.h"
#include "rss/buffer_pool.h"
#include "rss/page.h"

namespace systemr {
namespace {

// --- Injector determinism ---

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  FaultConfig config;
  config.io_error_rate = 0.2;
  config.corruption_rate = 0.2;
  FaultInjector a(77, config);
  FaultInjector b(77, config);
  a.Arm();
  b.Arm();
  std::vector<FaultKind> schedule_a, schedule_b;
  for (PageId id = 0; id < 500; ++id) {
    schedule_a.push_back(a.NextReadFault(id));
    schedule_b.push_back(b.NextReadFault(id));
  }
  EXPECT_EQ(schedule_a, schedule_b);
  EXPECT_EQ(a.faults_injected(), b.faults_injected());
  EXPECT_GT(a.faults_injected(), 0u) << "rates high enough to fire in 500";

  FaultInjector c(78, config);  // Different seed: different schedule.
  c.Arm();
  std::vector<FaultKind> schedule_c;
  for (PageId id = 0; id < 500; ++id) schedule_c.push_back(c.NextReadFault(id));
  EXPECT_NE(schedule_a, schedule_c);
}

TEST(FaultInjectorTest, DisarmedIsPassThrough) {
  FaultConfig config;
  config.io_error_rate = 1.0;  // Every armed read would fault.
  FaultInjector injector(1, config);
  for (PageId id = 0; id < 100; ++id) {
    EXPECT_EQ(injector.NextReadFault(id), FaultKind::kNone);
  }
  EXPECT_EQ(injector.reads_seen(), 0u) << "disarmed reads don't advance";
  EXPECT_EQ(injector.faults_injected(), 0u);
}

TEST(FaultInjectorTest, WarmupReadsAreNeverFaulted) {
  FaultConfig config;
  config.io_error_rate = 1.0;
  config.warmup_reads = 10;
  FaultInjector injector(1, config);
  injector.Arm();
  for (PageId id = 0; id < 10; ++id) {
    EXPECT_EQ(injector.NextReadFault(id), FaultKind::kNone);
  }
  EXPECT_NE(injector.NextReadFault(10), FaultKind::kNone);
}

// --- Buffer-pool boundary ---

TEST(BufferPoolFaultTest, InvalidPageIdsAreInternalNotUb) {
  PageStore store;
  BufferPool pool(&store, 4);
  auto bad = pool.Fetch(kInvalidPage);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInternal);

  auto out_of_range = pool.Fetch(12345);  // Never allocated.
  ASSERT_FALSE(out_of_range.ok());
  EXPECT_EQ(out_of_range.status().code(), StatusCode::kInternal);
  EXPECT_EQ(store.Get(12345), nullptr) << "store access is bounds-checked";
}

TEST(BufferPoolFaultTest, ChecksumMismatchIsDataLoss) {
  PageStore store;
  BufferPool pool(&store, 4);
  PageId id = pool.NewPage();
  std::memset(store.Get(id)->bytes.data(), 0x5a, 64);
  pool.FlushAll();
  ASSERT_TRUE(pool.Fetch(id).ok()) << "first read seals the checksum";

  // Silent out-of-band mutation (no MarkDirty): the next simulated disk
  // read must detect the divergence from the sealed checksum.
  store.Get(id)->bytes[10] ^= 0x01;
  pool.FlushAll();
  auto fetch = pool.Fetch(id);
  ASSERT_FALSE(fetch.ok());
  EXPECT_EQ(fetch.status().code(), StatusCode::kDataLoss);

  // Restoring the byte heals the page: the stored checksum was never
  // clobbered by the failed read.
  store.Get(id)->bytes[10] ^= 0x01;
  pool.FlushAll();
  EXPECT_TRUE(pool.Fetch(id).ok());
}

TEST(BufferPoolFaultTest, PersistentIoErrorSurfacesAfterRetries) {
  PageStore store;
  BufferPool pool(&store, 4);
  PageId id = pool.NewPage();
  FaultConfig config;
  config.io_error_rate = 1.0;
  config.persistent_fraction = 1.0;
  FaultInjector injector(9, config);
  pool.set_fault_injector(&injector);
  pool.FlushAll();

  injector.Arm();
  auto fetch = pool.Fetch(id);
  ASSERT_FALSE(fetch.ok());
  EXPECT_EQ(fetch.status().code(), StatusCode::kIoError);

  // Hits never fault: a resident page is trusted memory.
  injector.Disarm();
  ASSERT_TRUE(pool.Fetch(id).ok());
  injector.Arm();
  EXPECT_TRUE(pool.Fetch(id).ok()) << "resident, so no simulated disk read";
}

TEST(BufferPoolFaultTest, TransientIoErrorsEitherRecoverOrFailCleanly) {
  PageStore store;
  BufferPool pool(&store, 1);
  PageId a = pool.NewPage();
  PageId b = pool.NewPage();  // Two pages + capacity 1: every fetch misses.
  FaultConfig config;
  config.io_error_rate = 1.0;
  config.persistent_fraction = 0.0;  // All errors transient.
  FaultInjector injector(5, config);
  pool.set_fault_injector(&injector);
  pool.FlushAll();

  injector.Arm();
  int ok = 0, io_error = 0;
  for (int i = 0; i < 200; ++i) {
    auto fetch = pool.Fetch(i % 2 == 0 ? a : b);
    if (fetch.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(fetch.status().code(), StatusCode::kIoError);
      ++io_error;
    }
    pool.FlushAll();
  }
  // Retries recover most transient errors (each retry fails with p=0.3, and
  // up to three are attempted), but not necessarily all.
  EXPECT_GT(ok, 150) << "bounded retries should recover most reads";
  EXPECT_EQ(ok + io_error, 200);
}

TEST(BufferPoolFaultTest, CorruptionNeverTouchesStoredBytes) {
  PageStore store;
  BufferPool pool(&store, 4);
  PageId id = pool.NewPage();
  std::memset(store.Get(id)->bytes.data(), 0x77, kPageSize);
  pool.FlushAll();
  ASSERT_TRUE(pool.Fetch(id).ok());  // Seal.
  Page pristine = *store.Get(id);

  FaultConfig config;
  config.corruption_rate = 1.0;
  config.header_fraction = 0.0;  // Bit flips: caught by the checksum.
  FaultInjector injector(3, config);
  pool.set_fault_injector(&injector);

  injector.Arm();
  for (int i = 0; i < 20; ++i) {
    pool.FlushAll();
    auto fetch = pool.Fetch(id);
    ASSERT_FALSE(fetch.ok());
    EXPECT_EQ(fetch.status().code(), StatusCode::kDataLoss);
  }
  injector.Disarm();
  EXPECT_EQ(std::memcmp(pristine.bytes.data(), store.Get(id)->bytes.data(),
                        kPageSize),
            0)
      << "corruption must land on the shadow copy, not the store";
  pool.FlushAll();
  EXPECT_TRUE(pool.Fetch(id).ok()) << "fault-free reread sees pristine bytes";
}

TEST(BufferPoolFaultTest, HeaderCorruptionDeliversStructurallyInvalidPage) {
  PageStore store;
  BufferPool pool(&store, 4);
  PageId id = pool.NewPage();
  SlottedPage sp(store.Get(id));
  sp.Init();
  ASSERT_GE(sp.Insert("hello"), 0);
  pool.FlushAll();
  ASSERT_TRUE(pool.Fetch(id).ok());  // Seal.

  FaultConfig config;
  config.corruption_rate = 1.0;
  config.header_fraction = 1.0;  // Header clobber: evades the checksum.
  FaultInjector injector(11, config);
  pool.set_fault_injector(&injector);
  pool.FlushAll();

  // The read "succeeds" — header corruption models damage the checksum can't
  // see — so callers' structural validation is the last line of defense.
  injector.Arm();
  auto fetch = pool.Fetch(id);
  ASSERT_TRUE(fetch.ok());
  EXPECT_FALSE(SlottedPage(*fetch).ValidateHeader());
  std::string_view record;
  EXPECT_EQ(SlottedPage(*fetch).ReadSlot(0, &record), SlotState::kCorrupt);

  // The store still holds the good page.
  injector.Disarm();
  pool.FlushAll();
  auto clean = pool.Fetch(id);
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(SlottedPage(*clean).ValidateHeader());
  EXPECT_EQ(SlottedPage(*clean).ReadSlot(0, &record), SlotState::kLive);
  EXPECT_EQ(record, "hello");
}

// --- B-tree corruption ---

std::string IntKey(int64_t v) {
  std::string k;
  Value::Int(v).EncodeKey(&k);
  return k;
}

TEST(BTreeCorruptionTest, FlippedKeyByteIsDataLossNotCrash) {
  PageStore store;
  BufferPool pool(&store, 256);
  BTree tree(&pool, 0, /*unique=*/false);
  for (int64_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(tree.Insert(IntKey(k), Tid{static_cast<PageId>(k), 0}).ok());
  }
  // Seal every index page by reading it once — from "disk": pages still
  // resident after the inserts would be trusted hits and stay unsealed.
  pool.FlushAll();
  auto cursor = tree.NewCursor();
  ASSERT_TRUE(cursor.SeekToFirst().ok());
  while (cursor.Valid()) ASSERT_TRUE(cursor.Next().ok());

  // Flip one byte in the middle of the root page without resealing: the
  // checksum catches it on the next simulated disk read.
  store.Get(tree.root())->bytes[100] ^= 0x40;
  tree.DropNodeCaches();
  pool.FlushAll();
  Status st = cursor.Seek(IntKey(500));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  EXPECT_FALSE(cursor.Valid());

  // Heal the byte: the same tree works again (no durable damage).
  store.Get(tree.root())->bytes[100] ^= 0x40;
  tree.DropNodeCaches();
  pool.FlushAll();
  ASSERT_TRUE(cursor.Seek(IntKey(500)).ok());
  ASSERT_TRUE(cursor.Valid());
  EXPECT_EQ(cursor.user_key(), IntKey(500));
}

TEST(BTreeCorruptionTest, OutOfRangeChildIdIsDataLossNotCrash) {
  PageStore store;
  BufferPool pool(&store, 256);
  BTree tree(&pool, 0, /*unique=*/false);
  for (int64_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(tree.Insert(IntKey(k), Tid{static_cast<PageId>(k), 0}).ok());
  }
  ASSERT_GT(tree.height(), 1) << "need an internal root for this test";

  // Overwrite the root's leftmost child id (node layout: is_leaf u8, count
  // u16, next u32, then the leftmost child u32) with an id far past the
  // store, and RESEAL so the checksum is consistent: only the structural
  // validation in node decode can catch this one.
  PageId bogus = 0x7fffffff;
  std::memcpy(store.Get(tree.root())->bytes.data() + 7, &bogus, 4);
  store.Seal(tree.root());
  tree.DropNodeCaches();
  pool.FlushAll();

  auto cursor = tree.NewCursor();
  Status st = cursor.SeekToFirst();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  EXPECT_FALSE(cursor.Valid());
}

TEST(BTreeCorruptionTest, BadHeaderFlagIsDataLossNotCrash) {
  PageStore store;
  BufferPool pool(&store, 256);
  BTree tree(&pool, 0, /*unique=*/false);
  ASSERT_TRUE(tree.Insert(IntKey(1), Tid{1, 0}).ok());
  auto cursor = tree.NewCursor();
  ASSERT_TRUE(cursor.SeekToFirst().ok());  // Seal the root.

  store.Get(tree.root())->bytes[0] = static_cast<char>(0xff);
  store.Seal(tree.root());  // Checksum-consistent, structurally invalid.
  tree.DropNodeCaches();
  pool.FlushAll();
  Status st = cursor.SeekToFirst();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
}

// --- Per-statement limits through the Database facade ---

class ExecLimitsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(64);
    ASSERT_TRUE(
        db_->Execute("CREATE TABLE T (A INT, B INT)").ok());
    for (int i = 0; i < 300; ++i) {
      ASSERT_TRUE(db_->Execute("INSERT INTO T VALUES (" + std::to_string(i) +
                               ", " + std::to_string(i % 7) + ")")
                      .ok());
    }
    ASSERT_TRUE(db_->Execute("UPDATE STATISTICS T").ok());
  }

  std::unique_ptr<Database> db_;
};

TEST_F(ExecLimitsTest, PageBudgetAbortsAndEngineStaysUsable) {
  db_->rss().pool().FlushAll();
  ExecLimits limits;
  limits.max_buffer_gets = 1;  // Far too small for a 300-row scan.
  db_->set_exec_limits(limits);
  auto starved = db_->Query("SELECT A FROM T");
  ASSERT_FALSE(starved.ok());
  EXPECT_EQ(starved.status().code(), StatusCode::kResourceExhausted);

  // Same instance, limits lifted: fully usable, complete answer.
  db_->set_exec_limits(ExecLimits{});
  auto full = db_->Query("SELECT A FROM T");
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ(full->rows.size(), 300u);
}

TEST_F(ExecLimitsTest, RowLimitAborts) {
  ExecLimits limits;
  limits.max_rows = 10;
  db_->set_exec_limits(limits);
  auto r = db_->Query("SELECT A FROM T");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  db_->set_exec_limits(ExecLimits{});
  EXPECT_TRUE(db_->Query("SELECT A FROM T").ok());
}

TEST_F(ExecLimitsTest, CancelFlagAborts) {
  std::atomic<bool> cancel{true};  // Pre-cancelled: aborts at the first row.
  ExecLimits limits;
  limits.cancel = &cancel;
  db_->set_exec_limits(limits);
  auto r = db_->Query("SELECT A FROM T");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);

  cancel = false;
  auto ok = db_->Query("SELECT A FROM T");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->rows.size(), 300u);
}

TEST_F(ExecLimitsTest, ExpiredDeadlineAborts) {
  ExecLimits limits;
  limits.has_deadline = true;
  limits.deadline = std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1);  // Already past.
  db_->set_exec_limits(limits);
  auto r = db_->Query("SELECT A FROM T");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  db_->set_exec_limits(ExecLimits{});
  EXPECT_TRUE(db_->Query("SELECT A FROM T").ok());
}

// --- Fuzz-protocol determinism ---

TEST(FaultFuzzTest, SameSeedSameOutcome) {
  FuzzOptions options;
  options.inject_faults = true;
  options.queries_per_seed = 4;

  FuzzReport report_a, report_b;
  SeedResult a = RunFuzzSeed(42, options, &report_a);
  SeedResult b = RunFuzzSeed(42, options, &report_b);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(report_a.fault_queries, report_b.fault_queries);
  EXPECT_EQ(report_a.fault_clean_results, report_b.fault_clean_results);
  EXPECT_EQ(report_a.fault_clean_errors, report_b.fault_clean_errors);
  EXPECT_EQ(report_a.fault_budget_aborts, report_b.fault_budget_aborts);
  EXPECT_EQ(report_a.faults_injected, report_b.faults_injected);
}

TEST(FaultFuzzTest, SmokeSeedsHoldTheOracle) {
  FuzzOptions options;
  options.inject_faults = true;
  options.queries_per_seed = 4;
  FuzzReport report;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    SeedResult r = RunFuzzSeed(seed, options, &report);
    EXPECT_TRUE(r.violations.empty())
        << "seed " << seed << ": " << r.violations.front();
  }
  EXPECT_GT(report.faults_injected, 0u) << "injection must actually fire";
  EXPECT_GT(report.fault_clean_errors, 0u)
      << "some queries must surface clean storage errors";
}

}  // namespace
}  // namespace systemr
