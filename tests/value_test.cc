#include "common/value.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace systemr {
namespace {

TEST(ValueTest, TypeAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).AsReal(), 2.5);
  EXPECT_EQ(Value::Str("abc").AsStr(), "abc");
}

TEST(ValueTest, CompareSameType) {
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_EQ(Value::Int(7).Compare(Value::Int(7)), 0);
  EXPECT_GT(Value::Int(-1).Compare(Value::Int(-2)), 0);
  EXPECT_LT(Value::Str("a").Compare(Value::Str("b")), 0);
  EXPECT_LT(Value::Real(1.5).Compare(Value::Real(1.6)), 0);
}

TEST(ValueTest, CompareCrossNumeric) {
  EXPECT_EQ(Value::Int(3).Compare(Value::Real(3.0)), 0);
  EXPECT_LT(Value::Int(3).Compare(Value::Real(3.5)), 0);
  EXPECT_GT(Value::Real(4.0).Compare(Value::Int(3)), 0);
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int(-1000000)), 0);
  EXPECT_LT(Value::Null().Compare(Value::Str("")), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, SerializeRoundTrip) {
  std::vector<Value> values = {
      Value::Null(),        Value::Int(0),
      Value::Int(-1),       Value::Int(INT64_MAX),
      Value::Int(INT64_MIN), Value::Real(0.0),
      Value::Real(-3.25),   Value::Str(""),
      Value::Str("hello"),  Value::Str(std::string("a\0b", 3)),
  };
  std::string buf;
  for (const Value& v : values) v.Serialize(&buf);
  size_t pos = 0;
  for (const Value& v : values) {
    Value out;
    ASSERT_TRUE(Value::Deserialize(buf.data(), buf.size(), &pos, &out));
    EXPECT_EQ(v.Compare(out), 0) << v.ToString() << " vs " << out.ToString();
    EXPECT_EQ(v.type(), out.type());
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(ValueTest, SerializedSizeMatches) {
  for (const Value& v : {Value::Null(), Value::Int(5), Value::Real(1.5),
                         Value::Str("xyz")}) {
    std::string buf;
    v.Serialize(&buf);
    EXPECT_EQ(buf.size(), v.SerializedSize());
  }
}

TEST(ValueTest, KeyEncodingRoundTrip) {
  std::vector<Value> values = {
      Value::Null(),         Value::Int(-5),
      Value::Int(12345678),  Value::Real(-0.5),
      Value::Str("SMITH"),   Value::Str(std::string("a\0\0b", 4)),
  };
  std::string buf;
  for (const Value& v : values) v.EncodeKey(&buf);
  size_t pos = 0;
  for (const Value& v : values) {
    Value out;
    ASSERT_TRUE(Value::DecodeKey(buf, &pos, &out));
    EXPECT_EQ(v.Compare(out), 0);
  }
  EXPECT_EQ(pos, buf.size());
}

// Property: the memcomparable encoding preserves order for same-typed values.
TEST(ValueProperty, IntKeyEncodingPreservesOrder) {
  Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    int64_t a = rng.Uniform(-1000000, 1000000);
    int64_t b = rng.Uniform(-1000000, 1000000);
    std::string ka, kb;
    Value::Int(a).EncodeKey(&ka);
    Value::Int(b).EncodeKey(&kb);
    EXPECT_EQ(a < b, ka < kb) << a << " " << b;
    EXPECT_EQ(a == b, ka == kb);
  }
}

TEST(ValueProperty, DoubleKeyEncodingPreservesOrder) {
  Rng rng(11);
  for (int trial = 0; trial < 2000; ++trial) {
    double a = (rng.NextDouble() - 0.5) * 1e6;
    double b = (rng.NextDouble() - 0.5) * 1e6;
    std::string ka, kb;
    Value::Real(a).EncodeKey(&ka);
    Value::Real(b).EncodeKey(&kb);
    EXPECT_EQ(a < b, ka < kb) << a << " " << b;
  }
}

TEST(ValueProperty, StringKeyEncodingPreservesOrder) {
  Rng rng(13);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string a = rng.RandomString(rng.Uniform(0, 6));
    std::string b = rng.RandomString(rng.Uniform(0, 6));
    // Occasionally embed NULs to exercise the escape path.
    if (rng.Bernoulli(0.2) && !a.empty()) a[0] = '\0';
    if (rng.Bernoulli(0.2) && !b.empty()) b[0] = '\0';
    std::string ka, kb;
    Value::Str(a).EncodeKey(&ka);
    Value::Str(b).EncodeKey(&kb);
    EXPECT_EQ(a < b, ka < kb);
    EXPECT_EQ(a == b, ka == kb);
  }
}

TEST(ValueTest, CompositeKeyOrdersLexicographically) {
  std::string k1 = EncodeCompositeKey({Value::Str("SMITH"), Value::Int(1)});
  std::string k2 = EncodeCompositeKey({Value::Str("SMITH"), Value::Int(2)});
  std::string k3 = EncodeCompositeKey({Value::Str("SMYTH"), Value::Int(0)});
  EXPECT_LT(k1, k2);
  EXPECT_LT(k2, k3);
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Int(5).ToString(), "5");
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Str("x").ToString(), "'x'");
}

}  // namespace
}  // namespace systemr
