#include "sql/binder.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace systemr {
namespace {

class BinderTest : public ::testing::Test {
 protected:
  BinderTest() : rss_(64), catalog_(&rss_) {
    Schema emp({{"NAME", ValueType::kString},
                {"DNO", ValueType::kInt64},
                {"JOB", ValueType::kInt64},
                {"SAL", ValueType::kInt64}});
    Schema dept({{"DNO", ValueType::kInt64},
                 {"DNAME", ValueType::kString},
                 {"LOC", ValueType::kString}});
    EXPECT_TRUE(catalog_.CreateTable("EMP", emp).ok());
    EXPECT_TRUE(catalog_.CreateTable("DEPT", dept).ok());
  }

  StatusOr<std::unique_ptr<BoundQueryBlock>> Bind(const std::string& sql) {
    auto stmt = Parse(sql);
    if (!stmt.ok()) return stmt.status();
    Binder binder(&catalog_);
    return binder.Bind(*stmt->select);
  }

  Rss rss_;
  Catalog catalog_;
};

TEST_F(BinderTest, ResolvesColumnsAndOffsets) {
  auto block = Bind("SELECT NAME, DNAME FROM EMP, DEPT WHERE EMP.DNO=DEPT.DNO");
  ASSERT_TRUE(block.ok()) << block.status().ToString();
  const BoundQueryBlock& b = **block;
  EXPECT_EQ(b.row_width, 7u);
  EXPECT_EQ(b.tables[0].offset, 0u);
  EXPECT_EQ(b.tables[1].offset, 4u);
  // NAME is EMP column 0; DNAME is DEPT column 1 → offset 5.
  EXPECT_EQ(b.select_list[0]->offset, 0u);
  EXPECT_EQ(b.select_list[1]->offset, 5u);
  EXPECT_EQ(b.select_names[1], "DNAME");
}

TEST_F(BinderTest, UnqualifiedUniqueColumnsResolve) {
  auto block = Bind("SELECT NAME, LOC FROM EMP, DEPT");
  ASSERT_TRUE(block.ok());
}

TEST_F(BinderTest, AmbiguousColumnRejected) {
  auto block = Bind("SELECT DNO FROM EMP, DEPT");
  EXPECT_FALSE(block.ok());
}

TEST_F(BinderTest, UnknownTableAndColumn) {
  EXPECT_FALSE(Bind("SELECT A FROM NOPE").ok());
  EXPECT_FALSE(Bind("SELECT NOPE FROM EMP").ok());
  EXPECT_FALSE(Bind("SELECT EMP.NOPE FROM EMP").ok());
}

TEST_F(BinderTest, TypeChecking) {
  EXPECT_FALSE(Bind("SELECT NAME FROM EMP WHERE NAME > 5").ok())
      << "string vs int comparison";
  EXPECT_FALSE(Bind("SELECT NAME FROM EMP WHERE NAME + 1 = 2").ok())
      << "arithmetic on string";
  EXPECT_TRUE(Bind("SELECT NAME FROM EMP WHERE SAL > 5").ok());
  EXPECT_TRUE(Bind("SELECT NAME FROM EMP WHERE SAL + DNO > 5").ok());
}

TEST_F(BinderTest, DuplicateCorrelationRejected) {
  EXPECT_FALSE(Bind("SELECT X.NAME FROM EMP X, DEPT X").ok());
}

TEST_F(BinderTest, SelfJoinWithCorrelations) {
  auto block = Bind("SELECT X.NAME FROM EMP X, EMP Y WHERE X.SAL > Y.SAL");
  ASSERT_TRUE(block.ok()) << block.status().ToString();
  EXPECT_EQ((*block)->tables.size(), 2u);
  EXPECT_EQ((*block)->row_width, 8u);
}

TEST_F(BinderTest, SelectStar) {
  auto block = Bind("SELECT * FROM EMP");
  ASSERT_TRUE(block.ok());
  EXPECT_EQ((*block)->select_list.size(), 4u);
  EXPECT_EQ((*block)->select_names[0], "NAME");
}

TEST_F(BinderTest, AggregatesValidated) {
  EXPECT_TRUE(Bind("SELECT AVG(SAL) FROM EMP").ok());
  EXPECT_TRUE(Bind("SELECT DNO, AVG(SAL) FROM EMP GROUP BY DNO").ok());
  EXPECT_FALSE(Bind("SELECT NAME, AVG(SAL) FROM EMP").ok())
      << "non-grouped column with aggregate";
  EXPECT_FALSE(Bind("SELECT NAME FROM EMP GROUP BY DNO").ok())
      << "GROUP BY without aggregates";
  EXPECT_FALSE(Bind("SELECT NAME FROM EMP WHERE AVG(SAL) > 1").ok())
      << "aggregate in WHERE";
  EXPECT_FALSE(Bind("SELECT AVG(NAME) FROM EMP").ok())
      << "AVG of a string";
}

TEST_F(BinderTest, CorrelatedSubqueryLevels) {
  auto block = Bind(
      "SELECT X.NAME FROM EMP X WHERE X.SAL > "
      "(SELECT AVG(SAL) FROM EMP WHERE DNO = X.DNO)");
  ASSERT_TRUE(block.ok()) << block.status().ToString();
  const BoundQueryBlock& b = **block;
  EXPECT_EQ(b.correlation_reach, 0) << "top block is not correlated";
  const BoundExpr& cmp = *b.where;
  ASSERT_EQ(cmp.kind, BoundExprKind::kCompare);
  const BoundQueryBlock& sub = *cmp.children[1]->subquery;
  EXPECT_EQ(sub.correlation_reach, 1) << "subquery references X";
  // The DNO = X.DNO comparison: X.DNO has outer_level 1.
  const BoundExpr& sw = *sub.where;
  EXPECT_EQ(sw.children[1]->outer_level, 1);
  EXPECT_EQ(sw.children[1]->offset, 1u) << "X.DNO offset in outer row";
}

TEST_F(BinderTest, UncorrelatedSubquery) {
  auto block = Bind(
      "SELECT NAME FROM EMP WHERE DNO IN "
      "(SELECT DNO FROM DEPT WHERE LOC = 'DENVER')");
  ASSERT_TRUE(block.ok());
  const BoundExpr& w = *(*block)->where;
  ASSERT_EQ(w.kind, BoundExprKind::kInSubquery);
  EXPECT_EQ(w.subquery->correlation_reach, 0);
}

TEST_F(BinderTest, InSubqueryArityChecked) {
  EXPECT_FALSE(
      Bind("SELECT NAME FROM EMP WHERE DNO IN (SELECT DNO, DNAME FROM DEPT)")
          .ok());
}

TEST_F(BinderTest, OrderByBinds) {
  auto block = Bind("SELECT NAME FROM EMP ORDER BY SAL DESC, EMP.DNO");
  ASSERT_TRUE(block.ok());
  ASSERT_EQ((*block)->order_by.size(), 2u);
  EXPECT_FALSE((*block)->order_by[0].asc);
  EXPECT_EQ((*block)->order_by[0].column, 3u);
  EXPECT_TRUE((*block)->order_by[1].asc);
}

}  // namespace
}  // namespace systemr
