// Session subsystem tests: parameterized prepared statements, the shared
// plan cache (hit / invalidation / eviction semantics), and concurrent
// multi-session execution with race-free per-statement ExecStats.
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "db/database.h"
#include "session/plan_cache.h"
#include "session/session.h"

namespace systemr {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(64);
    ASSERT_TRUE(db_->ExecuteScript(R"(
      CREATE TABLE DEPT (DNO INT, DNAME STRING, LOC STRING);
      CREATE TABLE EMP (EMPNO INT, NAME STRING, DNO INT, SAL INT, MGR INT);
    )").ok());
    const char* locs[5] = {"AUSTIN", "DENVER", "BOSTON", "DENVER", "MIAMI"};
    for (int d = 0; d < 5; ++d) {
      ASSERT_TRUE(db_->Execute("INSERT INTO DEPT VALUES (" +
                               std::to_string(d) + ", 'D" +
                               std::to_string(d) + "', '" + locs[d] + "')")
                      .ok());
    }
    // 30 employees: EMPNO i, DNO = i%5, SAL = 1000 + 100*i, MGR = i/3.
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(db_->Execute("INSERT INTO EMP VALUES (" +
                               std::to_string(i) + ", 'E" +
                               std::to_string(i) + "', " +
                               std::to_string(i % 5) + ", " +
                               std::to_string(1000 + 100 * i) + ", " +
                               std::to_string(i / 3) + ")")
                      .ok());
    }
    ASSERT_TRUE(db_->Execute("CREATE UNIQUE INDEX EMP_PK ON EMP (EMPNO)").ok());
    ASSERT_TRUE(db_->Execute("CREATE INDEX EMP_DNO ON EMP (DNO)").ok());
    ASSERT_TRUE(
        db_->Execute("CREATE UNIQUE INDEX DEPT_PK ON DEPT (DNO)").ok());
    ASSERT_TRUE(db_->Execute("UPDATE STATISTICS EMP").ok());
    ASSERT_TRUE(db_->Execute("UPDATE STATISTICS DEPT").ok());
  }

  std::unique_ptr<Database> db_;
};

TEST_F(SessionTest, ParameterizedPointLookup) {
  Session session(db_.get());
  auto stmt = session.Prepare("SELECT NAME FROM EMP WHERE EMPNO = ?");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->num_params(), 1);
  for (int i = 0; i < 30; ++i) {
    auto r = stmt->Execute({Value::Int(i)});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->rows.size(), 1u);
    EXPECT_EQ(r->rows[0][0].AsStr(), "E" + std::to_string(i));
  }
  // Compiled once, executed thirty times.
  EXPECT_EQ(session.stats().optimizations, 1u);
  EXPECT_EQ(session.stats().executions, 30u);
}

TEST_F(SessionTest, ParameterIsSargable) {
  // A `?` in an equality predicate must be pushed into the scan as a
  // dynamic sarg (filled in at execute time), not left as a residual
  // filter above it.
  Session session(db_.get());
  auto stmt = session.Prepare("SELECT NAME FROM EMP WHERE EMPNO = ?");
  ASSERT_TRUE(stmt.ok());
  EXPECT_NE(stmt->Explain().find("dynsarg(EMPNO=?1)"), std::string::npos)
      << stmt->Explain();
}

TEST_F(SessionTest, ParameterNeverConstantFolded) {
  // One plan object, two executions, different parameter values: if the
  // first value had been folded into the compiled plan, the second
  // execution would return the first answer.
  Session session(db_.get());
  auto stmt = session.Prepare("SELECT EMPNO FROM EMP WHERE SAL > ?");
  ASSERT_TRUE(stmt.ok());
  const OptimizedQuery* plan_before = &stmt->plan();
  auto r1 = stmt->Execute({Value::Int(3500)});
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->rows.size(), 4u);  // i >= 26.
  auto r2 = stmt->Execute({Value::Int(1000)});
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->rows.size(), 29u);  // i >= 1.
  EXPECT_EQ(&stmt->plan(), plan_before);  // Same compiled plan both times.
}

TEST_F(SessionTest, ParameterArityChecked) {
  Session session(db_.get());
  auto stmt = session.Prepare("SELECT NAME FROM EMP WHERE EMPNO = ?");
  ASSERT_TRUE(stmt.ok());
  EXPECT_FALSE(stmt->Execute({}).ok());
  EXPECT_FALSE(stmt->Execute({Value::Int(1), Value::Int(2)}).ok());
  EXPECT_TRUE(stmt->Execute({Value::Int(1)}).ok());
}

TEST_F(SessionTest, ThousandExecutionsOptimizeOnce) {
  PlanCache cache;
  Session session(db_.get(), &cache);
  auto stmt = session.Prepare("SELECT NAME FROM EMP WHERE EMPNO = ?");
  ASSERT_TRUE(stmt.ok());
  for (int i = 0; i < 1000; ++i) {
    auto r = stmt->Execute({Value::Int(i % 30)});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->rows.size(), 1u);
  }
  EXPECT_EQ(session.stats().executions, 1000u);
  EXPECT_EQ(session.stats().optimizations, 1u);
  EXPECT_EQ(session.stats().reprepares, 0u);
  // The cache saw exactly one miss (the Prepare) and no invalidations.
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().invalidations, 0u);
}

TEST_F(SessionTest, CacheHitOnRepeatedSql) {
  PlanCache cache;
  Session session(db_.get(), &cache);
  ASSERT_TRUE(session.ExecuteQuery("SELECT NAME FROM EMP WHERE DNO = 2").ok());
  // Same statement modulo casing and whitespace: one cache entry.
  ASSERT_TRUE(
      session.ExecuteQuery("select  name from emp\n where dno=2").ok());
  EXPECT_EQ(session.stats().optimizations, 1u);
  EXPECT_EQ(session.stats().cache_hits, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(NormalizeSqlTest, CanonicalizesCaseAndSpacing) {
  EXPECT_EQ(NormalizeSql("select * from t where a=1"),
            NormalizeSql("SELECT  *  FROM T\nWHERE A = 1"));
  EXPECT_NE(NormalizeSql("SELECT * FROM T WHERE A = 1"),
            NormalizeSql("SELECT * FROM T WHERE A = 2"));
  EXPECT_NE(NormalizeSql("SELECT * FROM T WHERE A = ?"),
            NormalizeSql("SELECT * FROM T WHERE A = 1"));
}

TEST_F(SessionTest, UpdateStatisticsInvalidatesPlan) {
  PlanCache cache;
  Session session(db_.get(), &cache);
  auto stmt = session.Prepare("SELECT NAME FROM EMP WHERE DNO = ?");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(stmt->Execute({Value::Int(1)}).ok());
  EXPECT_EQ(session.stats().reprepares, 0u);

  // §2: UPDATE STATISTICS changes a dependency; the next execution must
  // transparently re-optimize, not run the stale access module.
  ASSERT_TRUE(db_->Execute("UPDATE STATISTICS EMP").ok());
  auto r = stmt->Execute({Value::Int(1)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 6u);
  EXPECT_EQ(session.stats().reprepares, 1u);
  EXPECT_EQ(session.stats().optimizations, 2u);
  EXPECT_GE(cache.stats().invalidations, 1u);

  // Re-optimized plan is cached again: a further execution is stable.
  ASSERT_TRUE(stmt->Execute({Value::Int(1)}).ok());
  EXPECT_EQ(session.stats().reprepares, 1u);
}

TEST_F(SessionTest, CreateIndexReoptimizesToIndexScan) {
  // A table big enough that an index point lookup beats a full scan (on a
  // page-sized table the optimizer correctly prefers the segment scan
  // either way), but with no index yet: the compiled plan must scan.
  ASSERT_TRUE(db_->Execute("CREATE TABLE BIG (K INT, V INT)").ok());
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(db_->Execute("INSERT INTO BIG VALUES (" + std::to_string(i) +
                             ", " + std::to_string(i * 7) + ")")
                    .ok());
  }
  ASSERT_TRUE(db_->Execute("UPDATE STATISTICS BIG").ok());

  PlanCache cache;
  Session session(db_.get(), &cache);
  auto stmt = session.Prepare("SELECT V FROM BIG WHERE K = ?");
  ASSERT_TRUE(stmt.ok());
  EXPECT_NE(stmt->Explain().find("SegScan"), std::string::npos)
      << stmt->Explain();
  auto r1 = stmt->Execute({Value::Int(70)});
  ASSERT_TRUE(r1.ok());
  ASSERT_EQ(r1->rows.size(), 1u);
  EXPECT_EQ(r1->rows[0][0].AsInt(), 490);

  // CREATE INDEX bumps the catalog version; the stale plan is dropped and
  // the statement recompiles onto the new access path.
  ASSERT_TRUE(db_->Execute("CREATE UNIQUE INDEX BIG_K ON BIG (K)").ok());
  auto r2 = stmt->Execute({Value::Int(70)});
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r2->rows.size(), 1u);
  EXPECT_EQ(r2->rows[0][0].AsInt(), 490);
  EXPECT_EQ(session.stats().reprepares, 1u);
  EXPECT_NE(stmt->Explain().find("IndexScan"), std::string::npos)
      << stmt->Explain();
  // The recompiled access path does a point probe, not 5000 RSI calls.
  EXPECT_LT(r2->stats.rsi_calls, 10u);
}

TEST_F(SessionTest, HashJoinChosenWithoutUsefulOrderAndInvalidated) {
  // Two tables joined on a column with no index on either side: no access
  // path delivers the join order, so merge join pays two sorts and nested
  // loop pays |outer| inner scans — the hash join must win the §5
  // enumeration on cost alone.
  ASSERT_TRUE(db_->Execute("CREATE TABLE BIG1 (K INT, V INT)").ok());
  ASSERT_TRUE(db_->Execute("CREATE TABLE BIG2 (K INT, V INT)").ok());
  for (int i = 0; i < 1500; ++i) {
    ASSERT_TRUE(db_->Execute("INSERT INTO BIG1 VALUES (" + std::to_string(i) +
                             ", " + std::to_string(i) + ")")
                    .ok());
    ASSERT_TRUE(db_->Execute("INSERT INTO BIG2 VALUES (" + std::to_string(i) +
                             ", " + std::to_string(2 * i) + ")")
                    .ok());
  }
  ASSERT_TRUE(db_->Execute("UPDATE STATISTICS BIG1").ok());
  ASSERT_TRUE(db_->Execute("UPDATE STATISTICS BIG2").ok());

  PlanCache cache;
  Session session(db_.get(), &cache);
  auto stmt = session.Prepare(
      "SELECT BIG1.K, BIG2.K FROM BIG1, BIG2 WHERE BIG1.V = BIG2.V");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_NE(stmt->Explain().find("HashJoin"), std::string::npos)
      << stmt->Explain();
  EXPECT_NE(stmt->Explain().find("method=hash"), std::string::npos)
      << stmt->Explain();
  auto r1 = stmt->Execute();
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  // BIG1.V = i, BIG2.V = 2i: matches are the even i in [0, 1500).
  EXPECT_EQ(r1->rows.size(), 750u);
  EXPECT_GT(r1->stats.hash_build_rows, 0u);
  EXPECT_GT(r1->stats.hash_probe_rows, 0u);

  // CREATE INDEX on the join column bumps the catalog version: the cached
  // hash plan is invalidated and the statement recompiles (possibly onto an
  // order-delivering access path) with identical results.
  ASSERT_TRUE(db_->Execute("CREATE INDEX BIG2_V ON BIG2 (V)").ok());
  auto r2 = stmt->Execute();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r2->rows.size(), 750u);
  EXPECT_EQ(session.stats().reprepares, 1u);
}

TEST_F(SessionTest, LruEvictionAtCapacity) {
  PlanCache cache(2);
  Session session(db_.get(), &cache);
  ASSERT_TRUE(session.ExecuteQuery("SELECT EMPNO FROM EMP").ok());
  ASSERT_TRUE(session.ExecuteQuery("SELECT DNO FROM DEPT").ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  // Third distinct statement evicts the least recently used (the first).
  ASSERT_TRUE(session.ExecuteQuery("SELECT NAME FROM EMP").ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  // The first statement misses again; the second was evicted next.
  ASSERT_TRUE(session.ExecuteQuery("SELECT EMPNO FROM EMP").ok());
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_EQ(session.stats().optimizations, 4u);
  EXPECT_EQ(session.stats().cache_hits, 0u);
}

TEST_F(SessionTest, SharedCacheAcrossSessions) {
  PlanCache cache;
  Session alice(db_.get(), &cache);
  Session bob(db_.get(), &cache);
  ASSERT_TRUE(alice.ExecuteQuery("SELECT NAME FROM EMP WHERE DNO = 2").ok());
  ASSERT_TRUE(bob.ExecuteQuery("SELECT NAME FROM EMP WHERE DNO = 2").ok());
  EXPECT_EQ(alice.stats().optimizations, 1u);
  EXPECT_EQ(bob.stats().optimizations, 0u);
  EXPECT_EQ(bob.stats().cache_hits, 1u);
}

// Two sessions scanning disjoint tables in parallel: each session's
// per-statement ExecStats must match its own single-threaded baseline
// exactly. Before per-statement metering, concurrent statements bled
// page fetches and buffer gets into each other's counters.
TEST_F(SessionTest, ConcurrentStatsAreDisjoint) {
  const char* kSql[2] = {"SELECT EMPNO FROM EMP WHERE SAL > 0",
                         "SELECT DNO FROM DEPT WHERE DNO >= 0"};
  ExecStats baseline[2];
  for (int i = 0; i < 2; ++i) {
    Session s(db_.get());
    auto r = s.ExecuteQuery(kSql[i]);
    ASSERT_TRUE(r.ok());
    baseline[i] = r->stats;
    ASSERT_GT(baseline[i].buffer_gets, 0u);
  }

  constexpr int kIters = 200;
  std::atomic<int> ready{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int i = 0; i < 2; ++i) {
    threads.emplace_back([&, i] {
      Session s(db_.get());
      ready.fetch_add(1);
      while (ready.load() < 2) {
      }  // Start the scans together.
      for (int iter = 0; iter < kIters; ++iter) {
        auto r = s.ExecuteQuery(kSql[i]);
        if (!r.ok() || r->stats.buffer_gets != baseline[i].buffer_gets ||
            r->stats.rsi_calls != baseline[i].rsi_calls ||
            r->stats.page_fetches != baseline[i].page_fetches) {
          failed.store(true);
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());
}

// Many sessions hammering one shared cache with a mix of statements while a
// catalog-version bump lands mid-flight: exercises every cache transition
// (hit, miss, invalidation, eviction) under contention. Correctness of the
// returned rows is asserted on every execution.
TEST_F(SessionTest, ConcurrentSessionsSharedCache) {
  PlanCache cache(4);
  constexpr int kThreads = 4;
  constexpr int kIters = 100;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Session s(db_.get(), &cache);
      auto stmt = s.Prepare("SELECT NAME FROM EMP WHERE EMPNO = ?");
      if (!stmt.ok()) {
        failed.store(true);
        return;
      }
      for (int i = 0; i < kIters; ++i) {
        int target = (t * 7 + i) % 30;
        auto r = stmt->Execute({Value::Int(target)});
        if (!r.ok() || r->rows.size() != 1 ||
            r->rows[0][0].AsStr() != "E" + std::to_string(target)) {
          failed.store(true);
          return;
        }
        // A second, unparameterized statement keeps the cache churning.
        auto q = s.ExecuteQuery("SELECT DNO FROM DEPT");
        if (!q.ok() || q->rows.size() != 5) {
          failed.store(true);
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());
  PlanCacheStats cs = cache.stats();
  EXPECT_GT(cs.hits, 0u);
  EXPECT_GT(cs.misses, 0u);
}

// Statistics invalidation: enough row mutations since UPDATE STATISTICS
// mark the table's histograms stale, EXPLAIN flags plans over it, and
// re-running UPDATE STATISTICS clears the flag and the mutation counter.
TEST_F(SessionTest, MutationsMarkStatisticsStale) {
  const TableInfo* emp = db_->catalog().FindTable("EMP");
  ASSERT_NE(emp, nullptr);
  EXPECT_FALSE(emp->stats_stale);

  // Stay below the threshold: still fresh.
  for (int i = 30; i < 30 + 200; ++i) {
    ASSERT_TRUE(db_->Execute("INSERT INTO EMP VALUES (" + std::to_string(i) +
                             ", 'E" + std::to_string(i) + "', 0, 1000, 0)")
                    .ok());
  }
  EXPECT_FALSE(emp->stats_stale);

  // Crossing kInsertsPerVersionBump mutations flips the flag (deletes count
  // too — mutations of either kind distort the histograms).
  for (int i = 230; i < 230 + 60; ++i) {
    ASSERT_TRUE(db_->Execute("INSERT INTO EMP VALUES (" + std::to_string(i) +
                             ", 'E" + std::to_string(i) + "', 0, 1000, 0)")
                    .ok());
  }
  EXPECT_TRUE(emp->stats_stale);

  // EXPLAIN surfaces the staleness on every scan of the table.
  auto plan = db_->Explain("SELECT NAME FROM EMP WHERE SAL > 2000");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("stats=stale"), std::string::npos) << *plan;
  auto dept_plan = db_->Explain("SELECT DNAME FROM DEPT");
  ASSERT_TRUE(dept_plan.ok());
  EXPECT_EQ(dept_plan->find("stats=stale"), std::string::npos)
      << "DEPT was not mutated";

  // UPDATE STATISTICS rebuilds the histograms and resets the state.
  ASSERT_TRUE(db_->Execute("UPDATE STATISTICS EMP").ok());
  EXPECT_FALSE(emp->stats_stale);
  EXPECT_EQ(emp->mutations_since_stats, 0u);
  plan = db_->Explain("SELECT NAME FROM EMP WHERE SAL > 2000");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->find("stats=stale"), std::string::npos) << *plan;
}

TEST_F(SessionTest, DatabaseRunRejectsUnboundParams) {
  // The plain Run(query) entry point must refuse a parameterized plan
  // instead of executing with dangling markers.
  auto query = db_->Prepare("SELECT NAME FROM EMP WHERE EMPNO = ?");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->num_params, 1);
  EXPECT_FALSE(db_->Run(*query).ok());
  auto r = db_->Run(*query, {Value::Int(3)});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsStr(), "E3");
}

}  // namespace
}  // namespace systemr
