#include "rss/sarg.h"

#include <gtest/gtest.h>

namespace systemr {
namespace {

TEST(CompareTest, AllOperators) {
  Value a = Value::Int(3), b = Value::Int(5);
  EXPECT_FALSE(EvalCompare(CompareOp::kEq, a, b));
  EXPECT_TRUE(EvalCompare(CompareOp::kNe, a, b));
  EXPECT_TRUE(EvalCompare(CompareOp::kLt, a, b));
  EXPECT_TRUE(EvalCompare(CompareOp::kLe, a, b));
  EXPECT_FALSE(EvalCompare(CompareOp::kGt, a, b));
  EXPECT_FALSE(EvalCompare(CompareOp::kGe, a, b));
  EXPECT_TRUE(EvalCompare(CompareOp::kEq, a, a));
  EXPECT_TRUE(EvalCompare(CompareOp::kLe, a, a));
  EXPECT_TRUE(EvalCompare(CompareOp::kGe, a, a));
}

TEST(CompareTest, NullComparisonsAreFalse) {
  for (CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                       CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    EXPECT_FALSE(EvalCompare(op, Value::Null(), Value::Int(1)));
    EXPECT_FALSE(EvalCompare(op, Value::Int(1), Value::Null()));
    EXPECT_FALSE(EvalCompare(op, Value::Null(), Value::Null()));
  }
}

TEST(CompareTest, MirrorOpIsConsistent) {
  Value a = Value::Int(3), b = Value::Int(5);
  for (CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                       CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    EXPECT_EQ(EvalCompare(op, a, b), EvalCompare(MirrorOp(op), b, a));
  }
}

TEST(SargTest, EmptySargAcceptsEverything) {
  Sarg sarg;
  EXPECT_TRUE(sarg.Matches({Value::Int(1)}));
  EXPECT_TRUE(sarg.Matches({}));
}

TEST(SargTest, SingleTerm) {
  Sarg sarg;
  sarg.AddConjunct({SargTerm{0, CompareOp::kGt, Value::Int(10)}});
  EXPECT_TRUE(sarg.Matches({Value::Int(11)}));
  EXPECT_FALSE(sarg.Matches({Value::Int(10)}));
}

TEST(SargTest, ConjunctionRequiresAll) {
  Sarg sarg;
  sarg.AddConjunct({SargTerm{0, CompareOp::kGe, Value::Int(5)},
                    SargTerm{0, CompareOp::kLe, Value::Int(9)}});
  EXPECT_TRUE(sarg.Matches({Value::Int(7)}));
  EXPECT_FALSE(sarg.Matches({Value::Int(4)}));
  EXPECT_FALSE(sarg.Matches({Value::Int(10)}));
}

TEST(SargTest, DisjunctionOfConjunctions) {
  // (a=1 AND b=2) OR (a=9)
  Sarg sarg;
  sarg.AddConjunct({SargTerm{0, CompareOp::kEq, Value::Int(1)},
                    SargTerm{1, CompareOp::kEq, Value::Int(2)}});
  sarg.AddConjunct({SargTerm{0, CompareOp::kEq, Value::Int(9)}});
  EXPECT_TRUE(sarg.Matches({Value::Int(1), Value::Int(2)}));
  EXPECT_FALSE(sarg.Matches({Value::Int(1), Value::Int(3)}));
  EXPECT_TRUE(sarg.Matches({Value::Int(9), Value::Int(42)}));
  EXPECT_FALSE(sarg.Matches({Value::Int(2), Value::Int(2)}));
}

TEST(SargTest, StringValues) {
  Sarg sarg;
  sarg.AddConjunct({SargTerm{0, CompareOp::kEq, Value::Str("CLERK")}});
  EXPECT_TRUE(sarg.Matches({Value::Str("CLERK")}));
  EXPECT_FALSE(sarg.Matches({Value::Str("TYPIST")}));
}

TEST(SargTest, ToStringRendersReadably) {
  Schema schema({{"JOB", ValueType::kString}, {"SAL", ValueType::kInt64}});
  Sarg sarg;
  sarg.AddConjunct({SargTerm{0, CompareOp::kEq, Value::Str("CLERK")},
                    SargTerm{1, CompareOp::kGt, Value::Int(100)}});
  EXPECT_EQ(sarg.ToString(schema), "JOB='CLERK' AND SAL>100");
  EXPECT_EQ(Sarg().ToString(schema), "true");
}

}  // namespace
}  // namespace systemr
