// Catalog + statistics tests: NCARD/TCARD/P/ICARD/NINDX semantics from §4,
// clustering measurement, and index scans through catalog-created indexes.
#include "catalog/catalog.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace systemr {
namespace {

// Advances a scan that is expected to never hit a storage error.
bool NextOk(RsiScan* scan, Row* row) {
  bool has = false;
  Status st = scan->Next(row, nullptr, &has);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return st.ok() && has;
}

Schema EmpSchema() {
  return Schema({{"EMPNO", ValueType::kInt64},
                 {"NAME", ValueType::kString},
                 {"DNO", ValueType::kInt64},
                 {"JOB", ValueType::kInt64},
                 {"SAL", ValueType::kInt64}});
}

class CatalogTest : public ::testing::Test {
 protected:
  CatalogTest() : rss_(256), catalog_(&rss_) {}

  void LoadEmp(int n, int dno_domain, bool sorted_by_dno) {
    ASSERT_TRUE(catalog_.CreateTable("EMP", EmpSchema()).ok());
    Rng rng(42);
    std::vector<Row> rows;
    for (int i = 0; i < n; ++i) {
      rows.push_back({Value::Int(i), Value::Str("E" + std::to_string(i)),
                      Value::Int(rng.Uniform(0, dno_domain - 1)),
                      Value::Int(rng.Uniform(0, 9)),
                      Value::Int(rng.Uniform(10000, 50000))});
    }
    if (sorted_by_dno) {
      std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
        return a[2].AsInt() < b[2].AsInt();
      });
    }
    for (const Row& r : rows) {
      ASSERT_TRUE(catalog_.Insert("EMP", r).ok());
    }
  }

  Rss rss_;
  Catalog catalog_;
};

TEST_F(CatalogTest, CreateTableAndLookup) {
  ASSERT_TRUE(catalog_.CreateTable("EMP", EmpSchema()).ok());
  EXPECT_NE(catalog_.FindTable("EMP"), nullptr);
  EXPECT_EQ(catalog_.FindTable("NOPE"), nullptr);
  EXPECT_FALSE(catalog_.CreateTable("EMP", EmpSchema()).ok())
      << "duplicate table name must fail";
}

TEST_F(CatalogTest, InsertTypeChecks) {
  ASSERT_TRUE(catalog_.CreateTable("EMP", EmpSchema()).ok());
  Row bad_arity = {Value::Int(1)};
  EXPECT_FALSE(catalog_.Insert("EMP", bad_arity).ok());
  Row bad_type = {Value::Str("x"), Value::Str("n"), Value::Int(1),
                  Value::Int(1), Value::Int(1)};
  EXPECT_FALSE(catalog_.Insert("EMP", bad_type).ok());
}

TEST_F(CatalogTest, UpdateStatisticsComputesNcardTcardP) {
  LoadEmp(1200, 10, false);
  ASSERT_TRUE(catalog_.UpdateStatistics("EMP").ok());
  const TableInfo* t = catalog_.FindTable("EMP");
  EXPECT_EQ(t->ncard, 1200u);
  EXPECT_GT(t->tcard, 1u);
  EXPECT_EQ(t->tcard, rss_.heap(t->id)->segment()->num_pages());
  EXPECT_DOUBLE_EQ(t->p, 1.0) << "EMP is alone in its segment";
  EXPECT_TRUE(t->has_stats);
}

TEST_F(CatalogTest, SharedSegmentGivesFractionalP) {
  ASSERT_TRUE(catalog_.CreateTable("A", EmpSchema()).ok());
  SegmentId seg = catalog_.FindTable("A")->segment;
  ASSERT_TRUE(catalog_.CreateTable("B", EmpSchema(), seg).ok());
  Rng rng(1);
  for (int i = 0; i < 400; ++i) {
    Row r = {Value::Int(i), Value::Str("n"), Value::Int(rng.Uniform(0, 9)),
             Value::Int(0), Value::Int(0)};
    ASSERT_TRUE(catalog_.Insert(i % 2 == 0 ? "A" : "B", r).ok());
  }
  ASSERT_TRUE(catalog_.UpdateStatistics("A").ok());
  const TableInfo* a = catalog_.FindTable("A");
  // Interleaved inserts: nearly every page holds tuples of both relations.
  EXPECT_GT(a->p, 0.9);
  EXPECT_EQ(a->ncard, 200u);
}

TEST_F(CatalogTest, IndexCreationInitializesStatistics) {
  LoadEmp(1000, 10, false);
  auto idx = catalog_.CreateIndex("EMP_DNO", "EMP", {"DNO"}, false, false);
  ASSERT_TRUE(idx.ok());
  const IndexInfo* info = *idx;
  EXPECT_EQ(info->icard_leading, 10u) << "ICARD of DNO";
  EXPECT_GT(info->nindx, 0u);
  EXPECT_EQ(info->low_key.AsInt(), 0);
  EXPECT_EQ(info->high_key.AsInt(), 9);
  // Table stats are initialized too (§4: index creation initializes stats).
  EXPECT_TRUE(catalog_.FindTable("EMP")->has_stats);
}

TEST_F(CatalogTest, ClusteringMeasuredFromPhysicalOrder) {
  LoadEmp(3000, 20, /*sorted_by_dno=*/true);
  auto idx =
      catalog_.CreateIndex("EMP_DNO", "EMP", {"DNO"}, false, /*clustered=*/true);
  ASSERT_TRUE(idx.ok());
  EXPECT_TRUE((*idx)->clustered);
  EXPECT_GT((*idx)->cluster_ratio, 0.95);
}

TEST_F(CatalogTest, NonClusteredIndexDetected) {
  LoadEmp(3000, 1000, /*sorted_by_dno=*/false);
  auto idx = catalog_.CreateIndex("EMP_DNO", "EMP", {"DNO"}, false,
                                  /*clustered=*/false);
  ASSERT_TRUE(idx.ok());
  EXPECT_FALSE((*idx)->clustered);
  EXPECT_LT((*idx)->cluster_ratio, 0.5);
}

TEST_F(CatalogTest, CompositeIndexKey) {
  LoadEmp(500, 10, false);
  auto idx =
      catalog_.CreateIndex("EMP_DNO_JOB", "EMP", {"DNO", "JOB"}, false, false);
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ((*idx)->key_columns, (std::vector<size_t>{2, 3}));
  EXPECT_EQ((*idx)->icard_leading, 10u);
  EXPECT_GT((*idx)->icard, 10u) << "full key is finer than leading column";
  EXPECT_LE((*idx)->icard, 100u);
}

TEST_F(CatalogTest, UniqueIndexOnPrimaryKey) {
  LoadEmp(500, 10, false);
  auto idx = catalog_.CreateIndex("EMP_PK", "EMP", {"EMPNO"}, /*unique=*/true,
                                  false);
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ((*idx)->icard, 500u);
  // A duplicate EMPNO insert now fails through the catalog.
  Row dup = {Value::Int(7), Value::Str("dup"), Value::Int(0), Value::Int(0),
             Value::Int(0)};
  EXPECT_FALSE(catalog_.Insert("EMP", dup).ok());
}

TEST_F(CatalogTest, IndexScanThroughCatalogIndex) {
  LoadEmp(1000, 10, false);
  auto idx = catalog_.CreateIndex("EMP_DNO", "EMP", {"DNO"}, false, false);
  ASSERT_TRUE(idx.ok());
  KeyRange range;
  std::string key;
  Value::Int(4).EncodeKey(&key);
  range.start = key;
  range.stop = key;
  auto scan = rss_.OpenIndexScan(catalog_.FindTable("EMP")->id, (*idx)->id,
                                 range, {});
  ASSERT_TRUE(scan->Open().ok());
  Row row;
  int count = 0;
  while (NextOk(scan.get(), &row)) {
    EXPECT_EQ(row[2].AsInt(), 4);
    ++count;
  }
  // Cross-check against a full segment scan.
  auto seg_scan = rss_.OpenSegmentScan(catalog_.FindTable("EMP")->id, {});
  ASSERT_TRUE(seg_scan->Open().ok());
  int expect = 0;
  while (NextOk(seg_scan.get(), &row)) {
    if (row[2].AsInt() == 4) ++expect;
  }
  EXPECT_EQ(count, expect);
}

TEST_F(CatalogTest, IndexScanRangeBounds) {
  LoadEmp(1000, 100, false);
  auto idx = catalog_.CreateIndex("EMP_DNO", "EMP", {"DNO"}, false, false);
  ASSERT_TRUE(idx.ok());
  RelId rel = catalog_.FindTable("EMP")->id;

  auto count_range = [&](std::optional<int64_t> lo, bool lo_inc,
                         std::optional<int64_t> hi, bool hi_inc) {
    KeyRange range;
    if (lo) {
      std::string k;
      Value::Int(*lo).EncodeKey(&k);
      range.start = k;
      range.start_inclusive = lo_inc;
    }
    if (hi) {
      std::string k;
      Value::Int(*hi).EncodeKey(&k);
      range.stop = k;
      range.stop_inclusive = hi_inc;
    }
    auto scan = rss_.OpenIndexScan(rel, (*idx)->id, range, {});
    EXPECT_TRUE(scan->Open().ok());
    Row row;
    int n = 0;
    while (NextOk(scan.get(), &row)) ++n;
    return n;
  };

  // Reference counts from a segment scan.
  auto ref_count = [&](auto pred) {
    auto scan = rss_.OpenSegmentScan(rel, {});
    EXPECT_TRUE(scan->Open().ok());
    Row row;
    int n = 0;
    while (NextOk(scan.get(), &row)) {
      if (pred(row[2].AsInt())) ++n;
    }
    return n;
  };

  EXPECT_EQ(count_range(10, true, 20, true),
            ref_count([](int64_t v) { return v >= 10 && v <= 20; }));
  EXPECT_EQ(count_range(10, false, 20, false),
            ref_count([](int64_t v) { return v > 10 && v < 20; }));
  EXPECT_EQ(count_range(std::nullopt, true, 5, true),
            ref_count([](int64_t v) { return v <= 5; }));
  EXPECT_EQ(count_range(95, true, std::nullopt, true),
            ref_count([](int64_t v) { return v >= 95; }));
}

}  // namespace
}  // namespace systemr
