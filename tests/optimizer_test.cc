// Access path selection tests: Table-2 path choice, interesting orders,
// DP join enumeration, the Cartesian-product heuristic, and the search-tree
// shape of §5 / Figs. 2-6.
#include "optimizer/optimizer.h"

#include <gtest/gtest.h>

#include "db/database.h"
#include "optimizer/cnf.h"
#include "optimizer/explain.h"
#include "optimizer/selectivity.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "workload/datagen.h"

namespace systemr {
namespace {

// Mirrors Optimizer::PlanBlock's setup so tests can inspect the enumerator.
struct Harness {
  std::unique_ptr<BoundQueryBlock> block;
  CostModel cost_model{CostParams{}};
  std::unique_ptr<SelectivityEstimator> sel;
  std::vector<BooleanFactor> factors;
  OrderClasses classes;
  PlannerContext ctx;
  std::unique_ptr<JoinEnumerator> enumerator;

  static StatusOr<std::unique_ptr<Harness>> Make(
      Database* db, const std::string& sql,
      JoinEnumerator::Options options = {}) {
    auto h = std::make_unique<Harness>();
    ASSIGN_OR_RETURN(Statement stmt, Parse(sql));
    Binder binder(&db->catalog());
    ASSIGN_OR_RETURN(h->block, binder.Bind(*stmt.select));
    h->cost_model = CostModel(db->options().cost);
    h->sel = std::make_unique<SelectivityEstimator>(&db->catalog(),
                                                    h->block.get());
    h->factors = ExtractBooleanFactors(*h->block);
    for (BooleanFactor& f : h->factors) {
      f.selectivity = h->sel->FactorSelectivity(*f.expr);
    }
    for (const BooleanFactor& f : h->factors) {
      if (f.join.has_value() && f.join->is_equi()) {
        h->classes.Union(f.join->t1, f.join->c1, f.join->t2, f.join->c2);
      }
    }
    h->ctx = PlannerContext{h->block.get(), &db->catalog(), &h->cost_model,
                            h->sel.get(), &h->factors, &h->classes};
    h->enumerator = std::make_unique<JoinEnumerator>(h->ctx, options);
    RETURN_IF_ERROR(h->enumerator->Run());
    return h;
  }
};

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest() : db_(128) {
    DataGen gen(&db_, 7);
    EXPECT_TRUE(gen.LoadPaperExample(4000, 50, 20).ok());
  }

  std::string Explain(const std::string& sql) {
    auto text = db_.Explain(sql);
    EXPECT_TRUE(text.ok()) << text.status().ToString();
    return text.ok() ? *text : "";
  }

  Database db_;
};

TEST_F(OptimizerTest, SelectiveEqualPredicateUsesIndex) {
  std::string plan = Explain("SELECT NAME FROM EMP WHERE DNO = 7");
  EXPECT_NE(plan.find("EMP_DNO"), std::string::npos) << plan;
}

TEST_F(OptimizerTest, NoPredicateUsesSegmentScan) {
  std::string plan = Explain("SELECT NAME FROM EMP");
  EXPECT_NE(plan.find("segment scan"), std::string::npos) << plan;
}

TEST_F(OptimizerTest, UniqueIndexEqualBoundsTheCost) {
  auto prepared = db_.Prepare("SELECT DNAME FROM DEPT WHERE DNO = 3");
  ASSERT_TRUE(prepared.ok());
  // The unique-index probe costs 1+1+W, so the chosen plan can never cost
  // more (here DEPT is a single page, so the segment scan wins outright).
  EXPECT_LE(prepared->est_cost, 2.0 + 2 * db_.options().cost.w + 1e-9);
  EXPECT_GT(prepared->est_cost, 0.0);
}

TEST_F(OptimizerTest, OrderByIndexedColumnAvoidsSort) {
  std::string plan =
      Explain("SELECT NAME FROM EMP WHERE DNO > 40 ORDER BY DNO");
  EXPECT_EQ(plan.find("Sort"), std::string::npos)
      << "clustered DNO index delivers the order:\n" << plan;
  EXPECT_NE(plan.find("EMP_DNO"), std::string::npos);
}

TEST_F(OptimizerTest, OrderByUnindexedColumnSorts) {
  std::string plan = Explain("SELECT NAME FROM EMP ORDER BY SAL");
  EXPECT_NE(plan.find("Sort"), std::string::npos) << plan;
}

TEST_F(OptimizerTest, RangePredicateBecomesIndexBounds) {
  std::string plan =
      Explain("SELECT NAME FROM EMP WHERE DNO BETWEEN 10 AND 12");
  EXPECT_NE(plan.find("EMP_DNO"), std::string::npos) << plan;
  EXPECT_NE(plan.find(">=10"), std::string::npos) << plan;
  EXPECT_NE(plan.find("<=12"), std::string::npos) << plan;
}

TEST_F(OptimizerTest, Figure1QueryPlans) {
  auto prepared = db_.Prepare(
      "SELECT NAME, TITLE, SAL, DNAME FROM EMP, DEPT, JOB "
      "WHERE TITLE='CLERK' AND LOC='DENVER' "
      "AND EMP.DNO=DEPT.DNO AND EMP.JOB=JOB.JOB");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  std::string plan = ExplainPlan(prepared->root, *prepared->block);
  // Every table appears, and some join method was chosen.
  EXPECT_NE(plan.find("EMP"), std::string::npos);
  EXPECT_NE(plan.find("DEPT"), std::string::npos);
  EXPECT_NE(plan.find("JOB"), std::string::npos);
  EXPECT_TRUE(plan.find("NestedLoopJoin") != std::string::npos ||
              plan.find("MergeJoin") != std::string::npos ||
              plan.find("HashJoin") != std::string::npos)
      << plan;
}

TEST_F(OptimizerTest, HashJoinWinsWhenNoOrderIsUseful) {
  // EMP.NAME = DEPT.DNAME: neither join column has an index, so no
  // interesting order comes for free. Merge join must sort both inputs and
  // nested loop rescans the inner per outer row; the hash join's single
  // build pass + W-weighted probes must be the cheapest solution.
  const std::string sql =
      "SELECT NAME FROM EMP, DEPT WHERE EMP.NAME = DEPT.DNAME";
  auto h = Harness::Make(&db_, sql);
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  auto best = (*h)->enumerator->Best({}, {});
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->plan->kind, PlanKind::kHashJoin) << best->describe;

  auto prepared = db_.Prepare(sql);
  ASSERT_TRUE(prepared.ok());
  std::string plan = ExplainPlan(prepared->root, *prepared->block);
  EXPECT_NE(plan.find("HashJoin"), std::string::npos) << plan;
  EXPECT_NE(plan.find("method=hash"), std::string::npos) << plan;
}

TEST_F(OptimizerTest, MergeJoinStillWinsWhenInterestingOrderPays) {
  // EMP.DNO = DEPT.DNO with ORDER BY DNO: the clustered EMP_DNO index and
  // DEPT's DNO index deliver the join order for free AND satisfy the ORDER
  // BY — a hash join would claim no order and force a sort on top, so the
  // order-preserving solution must survive (no HashJoin in the final plan).
  auto prepared = db_.Prepare(
      "SELECT NAME, DNAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO "
      "ORDER BY EMP.DNO");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  std::string plan = ExplainPlan(prepared->root, *prepared->block);
  EXPECT_EQ(plan.find("HashJoin"), std::string::npos) << plan;
  EXPECT_EQ(plan.find("Sort"), std::string::npos)
      << "interesting order should eliminate the sort:\n" << plan;
}

TEST_F(OptimizerTest, ForcedJoinMethodRespectedWhereApplicable) {
  const std::string sql =
      "SELECT NAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO";
  for (auto [force, expect] :
       {std::pair<JoinMethodForce, PlanKind>{JoinMethodForce::kHash,
                                             PlanKind::kHashJoin},
        {JoinMethodForce::kMerge, PlanKind::kMergeJoin},
        {JoinMethodForce::kNestedLoop, PlanKind::kNestedLoopJoin}}) {
    JoinEnumerator::Options options;
    options.force = force;
    auto h = Harness::Make(&db_, sql, options);
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    auto best = (*h)->enumerator->Best({}, {});
    ASSERT_TRUE(best.ok());
    EXPECT_EQ(best->plan->kind, expect) << best->describe;
  }
}

TEST_F(OptimizerTest, ChosenPlanIsCheapestCompleteSolution) {
  auto h = Harness::Make(&db_,
                         "SELECT NAME FROM EMP, DEPT "
                         "WHERE EMP.DNO = DEPT.DNO AND LOC = 'DENVER'");
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  auto best = (*h)->enumerator->Best({}, {});
  ASSERT_TRUE(best.ok());
  for (const JoinSolution& s : (*h)->enumerator->SolutionsFor(0b11)) {
    EXPECT_LE(best->cost, s.cost);
  }
}

TEST_F(OptimizerTest, PerSubsetSolutionsKeepCheapestPerOrder) {
  auto h = Harness::Make(&db_,
                         "SELECT NAME FROM EMP, DEPT "
                         "WHERE EMP.DNO = DEPT.DNO");
  ASSERT_TRUE(h.ok());
  const auto& interesting = (*h)->enumerator->interesting_orders();
  EXPECT_FALSE(interesting.empty()) << "join column defines an order";
  // No stored solution may be dominated by another (same subset).
  for (uint32_t mask : {0b01u, 0b10u, 0b11u}) {
    const auto& sols = (*h)->enumerator->SolutionsFor(mask);
    ASSERT_FALSE(sols.empty());
    for (const JoinSolution& a : sols) {
      for (const JoinSolution& b : sols) {
        if (&a == &b) continue;
        uint64_t ca = CoveredOrders(a.order, interesting);
        uint64_t cb = CoveredOrders(b.order, interesting);
        EXPECT_FALSE(b.cost <= a.cost && (ca & ~cb) == 0 && b.cost < a.cost)
            << "dominated solution retained";
      }
    }
  }
}

TEST_F(OptimizerTest, CartesianHeuristicSkipsDisconnectedPairs) {
  const std::string sql =
      "SELECT NAME FROM EMP, DEPT, JOB "
      "WHERE EMP.DNO = DEPT.DNO AND EMP.JOB = JOB.JOB";
  auto with = Harness::Make(&db_, sql);
  ASSERT_TRUE(with.ok());
  // DEPT={2nd table}, JOB={3rd}: the pair {DEPT,JOB} is disconnected and
  // must not be expanded under the heuristic.
  EXPECT_TRUE((*with)->enumerator->SolutionsFor(0b110).empty());

  JoinEnumerator::Options no_heuristic;
  no_heuristic.cartesian_heuristic = false;
  auto without = Harness::Make(&db_, sql, no_heuristic);
  ASSERT_TRUE(without.ok());
  EXPECT_FALSE((*without)->enumerator->SolutionsFor(0b110).empty());
  // Searching strictly more orders can only improve (or match) the best
  // estimate — in this query the early Cartesian product of the two small
  // filtered relations actually wins, a known blind spot of the System R
  // heuristic that the paper accepts in exchange for a smaller search.
  auto best_with = (*with)->enumerator->Best({}, {});
  auto best_without = (*without)->enumerator->Best({}, {});
  ASSERT_TRUE(best_with.ok());
  ASSERT_TRUE(best_without.ok());
  EXPECT_LE(best_without->cost, best_with->cost);
  EXPECT_LE((*with)->enumerator->solutions_generated(),
            (*without)->enumerator->solutions_generated());
}

TEST_F(OptimizerTest, PureCartesianStillPlans) {
  auto prepared = db_.Prepare("SELECT NAME FROM EMP, DEPT WHERE SAL = 1");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
}

TEST_F(OptimizerTest, DisablingInterestingOrdersNeverWins) {
  const std::string sql =
      "SELECT NAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO ORDER BY EMP.DNO";
  auto with = Harness::Make(&db_, sql);
  JoinEnumerator::Options no_orders;
  no_orders.use_interesting_orders = false;
  auto without = Harness::Make(&db_, sql, no_orders);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  OrderSpec required = {
      OrderKey{(*with)->classes.ClassOf(0, 1), true}};
  std::vector<SortKey> keys = {SortKey{1, true}};
  auto best_with = (*with)->enumerator->Best(required, keys);
  OrderSpec required2 = {
      OrderKey{(*without)->classes.ClassOf(0, 1), true}};
  auto best_without = (*without)->enumerator->Best(required2, keys);
  ASSERT_TRUE(best_with.ok());
  ASSERT_TRUE(best_without.ok());
  EXPECT_LE(best_with->cost, best_without->cost);
}

TEST_F(OptimizerTest, SolutionCountWithinPaperBound) {
  auto h = Harness::Make(&db_,
                         "SELECT NAME FROM EMP, DEPT, JOB "
                         "WHERE EMP.DNO = DEPT.DNO AND EMP.JOB = JOB.JOB");
  ASSERT_TRUE(h.ok());
  size_t n_orders = (*h)->enumerator->interesting_orders().size() + 1;
  // "At most 2^n (subsets) times the number of interesting result orders."
  EXPECT_LE((*h)->enumerator->solutions_stored(), (1u << 3) * n_orders);
}

TEST_F(OptimizerTest, MergeJoinConsideredForEquiJoin) {
  auto h = Harness::Make(&db_,
                         "SELECT NAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO");
  ASSERT_TRUE(h.ok());
  bool merge_seen = false;
  for (const JoinSolution& s : (*h)->enumerator->SolutionsFor(0b11)) {
    if (s.describe.find("MJ(") != std::string::npos) merge_seen = true;
  }
  // Merge solutions may lose to NL, but the search must have *stored* one
  // only if it was undominated; at minimum it must have been generated.
  EXPECT_GT((*h)->enumerator->solutions_generated(),
            (*h)->enumerator->solutions_stored());
  (void)merge_seen;
}

TEST_F(OptimizerTest, GroupByPlansAggregateAboveOrderedInput) {
  std::string plan =
      Explain("SELECT DNO, AVG(SAL) FROM EMP GROUP BY DNO");
  EXPECT_NE(plan.find("Aggregate"), std::string::npos) << plan;
  // DNO is the clustered index: grouping should ride the index order.
  EXPECT_EQ(plan.find("Sort"), std::string::npos) << plan;
}

TEST_F(OptimizerTest, EstimatedRowsPositive) {
  auto prepared = db_.Prepare(
      "SELECT NAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO AND SAL > 100");
  ASSERT_TRUE(prepared.ok());
  EXPECT_GT(prepared->est_rows, 0);
  EXPECT_GT(prepared->est_cost, 0);
}

}  // namespace
}  // namespace systemr
