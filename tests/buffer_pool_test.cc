#include "rss/buffer_pool.h"

#include <gtest/gtest.h>

namespace systemr {
namespace {

TEST(BufferPoolTest, HitsAndMisses) {
  PageStore store;
  BufferPool pool(&store, 2);
  PageId a = pool.NewPage();
  PageId b = pool.NewPage();
  EXPECT_EQ(pool.stats().writes, 2u);
  EXPECT_EQ(pool.stats().fetches, 0u);

  pool.Fetch(a);  // Hit: resident since creation.
  pool.Fetch(b);  // Hit.
  EXPECT_EQ(pool.stats().fetches, 0u);

  PageId c = pool.NewPage();  // Evicts LRU (a).
  pool.Fetch(c);              // Hit.
  EXPECT_EQ(pool.stats().fetches, 0u);
  pool.Fetch(a);  // Miss.
  EXPECT_EQ(pool.stats().fetches, 1u);
}

TEST(BufferPoolTest, LruEvictionOrder) {
  PageStore store;
  BufferPool pool(&store, 2);
  PageId a = pool.NewPage();
  PageId b = pool.NewPage();
  pool.Fetch(a);              // Order now: a (MRU), b (LRU).
  PageId c = pool.NewPage();  // Evicts b.
  (void)c;
  pool.ResetStats();
  pool.Fetch(a);
  EXPECT_EQ(pool.stats().fetches, 0u) << "a should have stayed resident";
  pool.Fetch(b);
  EXPECT_EQ(pool.stats().fetches, 1u) << "b should have been evicted";
}

TEST(BufferPoolTest, SequentialScanLargerThanPoolFaultsEveryPage) {
  PageStore store;
  BufferPool pool(&store, 4);
  std::vector<PageId> pages;
  for (int i = 0; i < 16; ++i) pages.push_back(pool.NewPage());
  pool.FlushAll();
  pool.ResetStats();
  // Two sequential passes: with LRU and a pool smaller than the scan, every
  // access in both passes is a miss.
  for (int pass = 0; pass < 2; ++pass) {
    for (PageId p : pages) pool.Fetch(p);
  }
  EXPECT_EQ(pool.stats().fetches, 32u);
}

TEST(BufferPoolTest, RepeatedAccessWithinPoolIsFree) {
  PageStore store;
  BufferPool pool(&store, 8);
  std::vector<PageId> pages;
  for (int i = 0; i < 8; ++i) pages.push_back(pool.NewPage());
  pool.FlushAll();
  pool.ResetStats();
  for (int pass = 0; pass < 10; ++pass) {
    for (PageId p : pages) pool.Fetch(p);
  }
  EXPECT_EQ(pool.stats().fetches, 8u) << "only the first pass faults";
  EXPECT_EQ(pool.stats().logical_gets, 80u);
}

TEST(BufferPoolTest, DiscardRemovesResidency) {
  PageStore store;
  BufferPool pool(&store, 4);
  PageId a = pool.NewPage();
  pool.Discard(a);
  EXPECT_EQ(pool.resident(), 0u);
  EXPECT_EQ(store.Get(a), nullptr);
}

TEST(BufferPoolTest, CapacityShrinkEvicts) {
  PageStore store;
  BufferPool pool(&store, 8);
  for (int i = 0; i < 8; ++i) pool.NewPage();
  EXPECT_EQ(pool.resident(), 8u);
  pool.set_capacity(3);
  EXPECT_EQ(pool.resident(), 3u);
}

}  // namespace
}  // namespace systemr
