// Transactional DML: BEGIN/COMMIT/ROLLBACK through Database, Session, and
// scripts; statement-level rollback and auto-commit atomicity; in-place
// undo (rollback never moves rows); relation locks and lock timeouts;
// ExecLimits firing mid-DML leaving a reusable engine.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "db/database.h"
#include "session/session.h"

namespace systemr {
namespace {

class TxnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(64);
    ASSERT_TRUE(db_->Execute(
        "CREATE TABLE T (PK INT, V INT)").ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(db_->Execute("INSERT INTO T VALUES (" + std::to_string(i) +
                               ", " + std::to_string(i * 10) + ")")
                      .ok());
    }
    ASSERT_TRUE(db_->Execute("CREATE UNIQUE INDEX T_PK ON T (PK)").ok());
    ASSERT_TRUE(db_->Execute("UPDATE STATISTICS T").ok());
  }

  int64_t Count(const std::string& where = "") {
    auto r = db_->Query("SELECT COUNT(*) FROM T" +
                        (where.empty() ? "" : " WHERE " + where));
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r->rows[0][0].AsInt();
  }

  std::unique_ptr<Database> db_;
};

TEST_F(TxnTest, CommitMakesEffectsDurable) {
  auto txn = db_->BeginTxn();
  ASSERT_TRUE(db_->Mutate("INSERT INTO T VALUES (100, 1000)", txn.get()).ok());
  ASSERT_TRUE(db_->Mutate("DELETE FROM T WHERE PK = 3", txn.get()).ok());
  ASSERT_TRUE(db_->CommitTxn(txn.get()).ok());
  EXPECT_EQ(Count(), 20);
  EXPECT_EQ(Count("PK = 100"), 1);
  EXPECT_EQ(Count("PK = 3"), 0);
}

TEST_F(TxnTest, RollbackUndoesInsertDeleteUpdate) {
  auto txn = db_->BeginTxn();
  ASSERT_TRUE(db_->Mutate("INSERT INTO T VALUES (100, 1000)", txn.get()).ok());
  ASSERT_TRUE(db_->Mutate("DELETE FROM T WHERE PK < 5", txn.get()).ok());
  ASSERT_TRUE(db_->Mutate("UPDATE T SET V = 0 WHERE PK >= 10", txn.get()).ok());
  ASSERT_TRUE(db_->RollbackTxn(txn.get()).ok());
  EXPECT_EQ(Count(), 20);
  EXPECT_EQ(Count("PK < 5"), 5);
  EXPECT_EQ(Count("V = 0"), 1);  // Only the original (0, 0) row.
  EXPECT_EQ(Count("PK = 100"), 0);
}

TEST_F(TxnTest, RollbackRestoresRowsFoundableThroughIndex) {
  // The PK index must find restored rows: rollback re-creates index entries
  // under the original TID.
  auto txn = db_->BeginTxn();
  ASSERT_TRUE(db_->Mutate("DELETE FROM T WHERE PK = 7", txn.get()).ok());
  ASSERT_TRUE(db_->RollbackTxn(txn.get()).ok());
  auto r = db_->Query("SELECT V FROM T WHERE PK = 7");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsInt(), 70);
  // And the unique constraint still guards the restored PK.
  EXPECT_FALSE(db_->Mutate("INSERT INTO T VALUES (7, 999)").ok());
}

TEST_F(TxnTest, DeleteAfterRollbackOfUpdateTargetsOriginalPlacement) {
  // Regression for the bug the crash fuzzer found: an UPDATE moves a row to
  // a new TID, rollback must put it back at its ORIGINAL placement so a
  // later committed DELETE logs a location that recovery replays.
  auto txn = db_->BeginTxn();
  ASSERT_TRUE(db_->Mutate("UPDATE T SET V = -1 WHERE PK = 5", txn.get()).ok());
  ASSERT_TRUE(db_->RollbackTxn(txn.get()).ok());
  ASSERT_TRUE(db_->Mutate("DELETE FROM T WHERE PK = 5").ok());
  EXPECT_EQ(Count("PK = 5"), 0);

  // Crash + recover: the committed delete must replay cleanly even though
  // the rolled-back update's records are skipped as losers.
  std::string wal = db_->rss().wal().SnapshotBytes(db_->rss().wal().size());
  Database fresh(64);
  auto stats = fresh.Recover(wal);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  auto r = fresh.Query("SELECT COUNT(*) FROM T WHERE PK = 5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].AsInt(), 0);
}

TEST_F(TxnTest, FailedStatementRollsBackToSavepointOnly) {
  auto txn = db_->BeginTxn();
  ASSERT_TRUE(db_->Mutate("INSERT INTO T VALUES (100, 1000)", txn.get()).ok());
  // Second row collides with PK 100 inserted above: the whole statement
  // fails, but the first statement's row survives in the transaction.
  auto bad = db_->Mutate("INSERT INTO T VALUES (101, 1), (100, 2)", txn.get());
  EXPECT_FALSE(bad.ok());
  ASSERT_TRUE(db_->Mutate("INSERT INTO T VALUES (102, 3)", txn.get()).ok());
  ASSERT_TRUE(db_->CommitTxn(txn.get()).ok());
  EXPECT_EQ(Count("PK = 100"), 1);
  EXPECT_EQ(Count("PK = 101"), 0);  // Nothing from the failed statement.
  EXPECT_EQ(Count("PK = 102"), 1);
}

TEST_F(TxnTest, AutoCommitFailedStatementLeavesNothing) {
  // Multi-row INSERT failing on its third row must leave no partial rows.
  auto bad = db_->Mutate("INSERT INTO T VALUES (200, 1), (201, 2), (0, 3)");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(Count(), 20);
  EXPECT_EQ(Count("PK = 200"), 0);
  EXPECT_EQ(Count("PK = 201"), 0);
  // The engine stays usable.
  EXPECT_TRUE(db_->Mutate("INSERT INTO T VALUES (200, 1)").ok());
}

TEST_F(TxnTest, FailedUpdateRestoresRowInPlace) {
  // UPDATE sets PK to a duplicate: per-row insert fails, the statement
  // aborts, and every touched row must be back (values intact).
  auto bad = db_->Mutate("UPDATE T SET PK = 1 WHERE PK > 15");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(Count(), 20);
  EXPECT_EQ(Count("PK > 15"), 4);
  EXPECT_EQ(Count("PK = 1"), 1);
}

TEST_F(TxnTest, TransactionControlRequiresSessionContext) {
  EXPECT_FALSE(db_->Execute("BEGIN").ok());
  EXPECT_FALSE(db_->Execute("COMMIT").ok());
  EXPECT_FALSE(db_->Execute("ROLLBACK").ok());
}

TEST_F(TxnTest, ScriptCommitAndRollback) {
  ASSERT_TRUE(db_->ExecuteScript(R"(
    BEGIN;
    INSERT INTO T VALUES (100, 1);
    COMMIT;
    BEGIN TRANSACTION;
    INSERT INTO T VALUES (101, 2);
    ROLLBACK;
  )").ok());
  EXPECT_EQ(Count("PK = 100"), 1);
  EXPECT_EQ(Count("PK = 101"), 0);
}

TEST_F(TxnTest, ScriptRollsBackOpenTransactionAtEnd) {
  ASSERT_TRUE(db_->ExecuteScript(R"(
    BEGIN;
    INSERT INTO T VALUES (100, 1);
  )").ok());
  EXPECT_EQ(Count("PK = 100"), 0);
}

TEST_F(TxnTest, SessionTransactionLifecycle) {
  Session session(db_.get());
  ASSERT_TRUE(session.Execute("BEGIN WORK").ok());
  EXPECT_TRUE(session.in_txn());
  ASSERT_TRUE(session.Execute("INSERT INTO T VALUES (100, 1)").ok());
  // Uncommitted rows are visible to the owning session's reads.
  auto mine = session.ExecuteQuery("SELECT COUNT(*) FROM T WHERE PK = 100");
  ASSERT_TRUE(mine.ok()) << mine.status().ToString();
  EXPECT_EQ(mine->rows[0][0].AsInt(), 1);
  ASSERT_TRUE(session.Execute("COMMIT").ok());
  EXPECT_FALSE(session.in_txn());
  EXPECT_EQ(Count("PK = 100"), 1);

  EXPECT_FALSE(session.Execute("COMMIT").ok());    // No open transaction.
  EXPECT_FALSE(session.Execute("ROLLBACK").ok());
  ASSERT_TRUE(session.Execute("BEGIN").ok());
  EXPECT_FALSE(session.Execute("BEGIN").ok());     // Already open.
  ASSERT_TRUE(session.Execute("ROLLBACK").ok());
}

TEST_F(TxnTest, SessionDestructorRollsBackOpenTransaction) {
  {
    Session session(db_.get());
    ASSERT_TRUE(session.Execute("BEGIN").ok());
    ASSERT_TRUE(session.Execute("INSERT INTO T VALUES (100, 1)").ok());
  }
  EXPECT_EQ(Count("PK = 100"), 0);
  // The X lock died with the session: others can write again.
  EXPECT_TRUE(db_->Mutate("INSERT INTO T VALUES (100, 1)").ok());
}

TEST_F(TxnTest, WriterBlocksWriterUntilTimeout) {
  db_->lock_manager().set_timeout(std::chrono::milliseconds(50));
  auto txn = db_->BeginTxn();
  ASSERT_TRUE(db_->Mutate("INSERT INTO T VALUES (100, 1)", txn.get()).ok());
  // A concurrent auto-commit write on the same relation cannot get the X
  // lock: bounded wait, then a clean statement failure.
  auto blocked = db_->Mutate("INSERT INTO T VALUES (101, 2)");
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kResourceExhausted);
  ASSERT_TRUE(db_->CommitTxn(txn.get()).ok());
  // Lock released: the write goes through now.
  EXPECT_TRUE(db_->Mutate("INSERT INTO T VALUES (101, 2)").ok());
}

TEST_F(TxnTest, WriterBlocksReaderUntilCommit) {
  db_->lock_manager().set_timeout(std::chrono::milliseconds(50));
  auto txn = db_->BeginTxn();
  ASSERT_TRUE(db_->Mutate("DELETE FROM T WHERE PK = 0", txn.get()).ok());
  // An auto-commit read takes an ephemeral S lock — incompatible with the
  // writer's X, so uncommitted deletes are never observed.
  auto r = db_->Query("SELECT COUNT(*) FROM T");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  ASSERT_TRUE(db_->RollbackTxn(txn.get()).ok());
  EXPECT_EQ(Count(), 20);
}

TEST_F(TxnTest, ExecLimitsAbortDmlCleanly) {
  // A page budget too small for the UPDATE's scan: the statement must abort
  // with kResourceExhausted, leave no partial effects (auto-commit rollback),
  // and the engine must stay fully usable afterwards.
  ExecLimits tiny;
  tiny.max_buffer_gets = 1;
  db_->set_exec_limits(tiny);
  auto r = db_->Mutate("UPDATE T SET V = V + 1 WHERE PK >= 0");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  db_->set_exec_limits(ExecLimits{});
  EXPECT_EQ(Count("V = 0"), 1);   // Row (0,0) untouched.
  EXPECT_EQ(Count(), 20);
  // Reusable: the same statement succeeds without the budget.
  ASSERT_TRUE(db_->Mutate("UPDATE T SET V = V + 1 WHERE PK >= 0").ok());
  EXPECT_EQ(Count("V = 1"), 1);
}

TEST_F(TxnTest, ExecLimitsAbortInsideTransactionKeepsTxnAlive) {
  auto txn = db_->BeginTxn();
  ASSERT_TRUE(db_->Mutate("INSERT INTO T VALUES (100, 1)", txn.get()).ok());
  ExecLimits tiny;
  tiny.max_buffer_gets = 1;
  db_->set_exec_limits(tiny);
  auto r = db_->Mutate("DELETE FROM T WHERE PK >= 0", txn.get());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  db_->set_exec_limits(ExecLimits{});
  // The earlier statement's work is still there; the transaction commits.
  ASSERT_TRUE(db_->CommitTxn(txn.get()).ok());
  EXPECT_EQ(Count(), 21);
  EXPECT_EQ(Count("PK = 100"), 1);
}

TEST_F(TxnTest, GroupCommitBatchesFsyncsAndSurvivesCrash) {
  // Eight sessions commit concurrently against a WAL whose fsync takes 3ms.
  // Group commit must elect leaders and piggyback the rest: well under one
  // fsync per commit. Each thread gets its own table — commits on the SAME
  // table would serialize on the relation X lock and never overlap.
  constexpr int kThreads = 8;
  for (int i = 0; i < kThreads; ++i) {
    ASSERT_TRUE(db_->Execute("CREATE TABLE G" + std::to_string(i) +
                             " (PK INT, V INT)").ok());
  }
  WalManager::Stats before = db_->rss().wal().stats();
  db_->rss().wal().set_sync_delay_us(3000);

  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Session session(db_.get(), nullptr);
      if (!session.Begin().ok() ||
          !session.Mutate("INSERT INTO G" + std::to_string(t) + " VALUES (" +
                          std::to_string(t) + ", 1)").ok() ||
          !session.Commit().ok()) {
        ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  db_->rss().wal().set_sync_delay_us(0);
  ASSERT_EQ(failures.load(), 0);

  WalManager::Stats after = db_->rss().wal().stats();
  uint64_t syncs = after.syncs - before.syncs;
  uint64_t piggybacked = after.piggybacked - before.piggybacked;
  // Every commit became durable, but with fewer fsyncs than commits: at
  // least one committer rode another's fsync.
  EXPECT_LT(syncs, kThreads) << "no fsync batching happened";
  EXPECT_GT(piggybacked, 0u);
  EXPECT_GE(syncs + piggybacked, (uint64_t)kThreads);

  // Crash at exactly the durable prefix (what a real fsync guarantees) and
  // recover: every one of the batched commits must survive — piggybacking
  // must never report durability a crash can lose.
  std::string wal = db_->rss().wal().SnapshotBytes(db_->rss().wal().durable_size());
  Database fresh(64);
  auto stats = fresh.Recover(wal);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  for (int i = 0; i < kThreads; ++i) {
    auto r = fresh.Query("SELECT COUNT(*) FROM G" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->rows[0][0].AsInt(), 1) << "lost batched commit on G" << i;
  }
}

}  // namespace
}  // namespace systemr
