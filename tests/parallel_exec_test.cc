// Morsel-driven parallel execution tests: the dispenser's partitioning
// contract, the worker pool's barrier, exchange correctness (scan / join /
// aggregation plans must match their serial twins row for row), cooperative
// limit and cancel enforcement across workers, the parallel-aware cost
// model's startup penalty, and a 200-seed forced-parallel differential fuzz
// gate against the serial reference executor.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "db/database.h"
#include "exec/parallel/morsel.h"
#include "exec/parallel/worker_pool.h"
#include "harness/differ.h"
#include "harness/fuzz_session.h"
#include "optimizer/cost_model.h"
#include "session/plan_cache.h"
#include "session/session.h"

namespace systemr {
namespace {

// ---------------------------------------------------------------------------
// MorselDispenser: page ranges must partition [0, num_pages) exactly.

TEST(MorselDispenserTest, EmptySegmentYieldsNoMorsels) {
  MorselDispenser d(0);
  EXPECT_EQ(d.num_morsels(), 0u);
  MorselDispenser::Morsel m;
  EXPECT_FALSE(d.Next(&m));
}

TEST(MorselDispenserTest, SinglePageIsOneMorsel) {
  MorselDispenser d(1);
  EXPECT_EQ(d.num_morsels(), 1u);
  MorselDispenser::Morsel m;
  ASSERT_TRUE(d.Next(&m));
  EXPECT_EQ(m.begin, 0u);
  EXPECT_EQ(m.end, 1u);
  EXPECT_FALSE(d.Next(&m));
}

TEST(MorselDispenserTest, PartitionIsExactWithRemainderTail) {
  // 20 pages at 8 pages/morsel: [0,8) [8,16) [16,20).
  MorselDispenser d(20);
  EXPECT_EQ(d.num_morsels(), 3u);
  MorselDispenser::Morsel m;
  size_t expected_begin = 0;
  while (d.Next(&m)) {
    EXPECT_EQ(m.begin, expected_begin);
    EXPECT_LE(m.end, 20u);
    EXPECT_GT(m.end, m.begin);
    expected_begin = m.end;
  }
  EXPECT_EQ(expected_begin, 20u);  // No gap, no overlap, full coverage.
}

TEST(MorselDispenserTest, ConcurrentDrainCoversEveryPageOnce) {
  constexpr size_t kPages = 1000;
  MorselDispenser d(kPages, /*pages_per_morsel=*/3);
  std::mutex mu;
  std::vector<std::pair<size_t, size_t>> claimed;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      MorselDispenser::Morsel m;
      while (d.Next(&m)) {
        std::lock_guard<std::mutex> lock(mu);
        claimed.emplace_back(m.begin, m.end);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  std::vector<bool> covered(kPages, false);
  for (const auto& [begin, end] : claimed) {
    for (size_t p = begin; p < end; ++p) {
      EXPECT_FALSE(covered[p]) << "page " << p << " claimed twice";
      covered[p] = true;
    }
  }
  EXPECT_TRUE(std::all_of(covered.begin(), covered.end(),
                          [](bool b) { return b; }));
}

// ---------------------------------------------------------------------------
// WorkerPool: every task runs exactly once; the pool survives reuse.

TEST(WorkerPoolTest, RunsEveryTaskAndIsReusable) {
  WorkerPool pool(4);
  for (int round = 0; round < 3; ++round) {
    std::atomic<int> ran{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 10; ++i) {
      tasks.emplace_back([&ran] { ran.fetch_add(1); });
    }
    pool.RunAll(std::move(tasks));
    EXPECT_EQ(ran.load(), 10);
  }
}

TEST(WorkerPoolTest, SingleTaskRunsInlineWithoutThreads) {
  WorkerPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  tasks.emplace_back([&ran] { ran.fetch_add(1); });
  pool.RunAll(std::move(tasks));
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(pool.threads_started(), 0u);  // Lazy: dop=1 never pays a thread.
}

// ---------------------------------------------------------------------------
// Parallel-aware costing: ParallelFragmentCost = serial/dop + W*rows_out
// + startup*dop.

TEST(ParallelCostTest, StartupPenaltyKeepsSmallFragmentsSerial) {
  CostModel model(CostParams{});
  // A fragment cheaper than one worker's startup cost can never win.
  for (int dop = 2; dop <= 8; ++dop) {
    EXPECT_GT(model.ParallelFragmentCost(3.0, 0.0, dop), 3.0) << dop;
  }
  // A large fragment with few output rows parallelizes profitably...
  EXPECT_LT(model.ParallelFragmentCost(1000.0, 10.0, 4), 1000.0);
  // ...but gathering every input row back through the exchange does not
  // (W * rows_out dominates the divided scan cost).
  double serial = 100.0;
  double gather_all = model.ParallelFragmentCost(serial, 10000.0, 4);
  EXPECT_GT(gather_all, serial);
}

// ---------------------------------------------------------------------------
// End-to-end: parallel plans must return exactly the serial results.

class ParallelExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(256);
    ASSERT_TRUE(db_->ExecuteScript(R"(
      CREATE TABLE BIG (A INT, B INT, C STRING);
      CREATE TABLE DIM (K INT, V STRING);
      CREATE TABLE EMPTYT (X INT, Y INT);
    )").ok());
    for (int k = 0; k < 20; ++k) {
      ASSERT_TRUE(db_->Execute("INSERT INTO DIM VALUES (" + std::to_string(k) +
                               ", 'V" + std::to_string(k) + "')").ok());
    }
    // ~4000 rows over a few dozen pages: several morsels at any dop.
    for (int i = 0; i < 4000; ++i) {
      ASSERT_TRUE(db_->Execute("INSERT INTO BIG VALUES (" + std::to_string(i) +
                               ", " + std::to_string(i % 20) + ", 'R" +
                               std::to_string(i % 7) + "')").ok());
    }
    ASSERT_TRUE(db_->Execute("UPDATE STATISTICS BIG").ok());
    ASSERT_TRUE(db_->Execute("UPDATE STATISTICS DIM").ok());
    ASSERT_TRUE(db_->Execute("UPDATE STATISTICS EMPTYT").ok());
  }

  // Runs `sql` serially and at the given dop (forced past the cost model so
  // even borderline fragments take the exchange) and requires multiset
  // equality. Returns the parallel result for extra assertions.
  QueryResult CheckParallelMatchesSerial(const std::string& sql, int dop) {
    Session serial(db_.get());
    auto s = serial.ExecuteQuery(sql);
    EXPECT_TRUE(s.ok()) << sql << "\n" << s.status().ToString();

    Session parallel(db_.get());
    parallel.set_max_dop(dop);
    parallel.set_force_parallel(true);
    auto p = parallel.ExecuteQuery(sql);
    EXPECT_TRUE(p.ok()) << sql << "\n" << p.status().ToString();
    if (!s.ok() || !p.ok()) return QueryResult{};
    EXPECT_TRUE(SameRowMultiset(s->rows, p->rows))
        << sql << "\n" << DiffSummary(s->rows, p->rows);
    return std::move(*p);
  }

  std::unique_ptr<Database> db_;
};

TEST_F(ParallelExecTest, ParallelScanMatchesSerial) {
  QueryResult r = CheckParallelMatchesSerial(
      "SELECT A, B FROM BIG WHERE A > 100 AND B < 15", 4);
  EXPECT_GT(r.stats.parallel_workers, 1u);
  EXPECT_GT(r.stats.parallel_morsels, 1u);
}

TEST_F(ParallelExecTest, ParallelJoinMatchesSerial) {
  QueryResult r = CheckParallelMatchesSerial(
      "SELECT BIG.A, DIM.V FROM BIG, DIM "
      "WHERE BIG.B = DIM.K AND BIG.A < 500", 4);
  EXPECT_GT(r.stats.parallel_workers, 1u);
}

TEST_F(ParallelExecTest, ParallelAggregationMatchesSerial) {
  QueryResult r = CheckParallelMatchesSerial(
      "SELECT B, COUNT(*), SUM(A), MIN(A), MAX(A) FROM BIG "
      "WHERE A > 50 GROUP BY B", 4);
  EXPECT_EQ(r.rows.size(), 20u);
  EXPECT_GT(r.stats.parallel_workers, 1u);
}

TEST_F(ParallelExecTest, ParallelHavingAndDuplicateGroupsMatchSerial) {
  CheckParallelMatchesSerial(
      "SELECT C, COUNT(*) FROM BIG GROUP BY C HAVING COUNT(*) > 500", 4);
}

TEST_F(ParallelExecTest, OrderByAboveExchangeStaysSorted) {
  Session parallel(db_.get());
  parallel.set_max_dop(4);
  parallel.set_force_parallel(true);
  auto r = parallel.ExecuteQuery(
      "SELECT B, COUNT(*) FROM BIG GROUP BY B ORDER BY B");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 20u);
  for (size_t i = 1; i < r->rows.size(); ++i) {
    EXPECT_LT(r->rows[i - 1][0].Compare(r->rows[i][0]), 0);
  }
}

TEST_F(ParallelExecTest, MoreWorkersThanMorselsClampsCleanly) {
  // DIM fits in one or two pages: dop 8 must clamp to the morsel count and
  // still return every row exactly once.
  QueryResult r = CheckParallelMatchesSerial("SELECT K, V FROM DIM", 8);
  EXPECT_EQ(r.rows.size(), 20u);
}

TEST_F(ParallelExecTest, EmptyTableUnderForcedParallel) {
  QueryResult r = CheckParallelMatchesSerial(
      "SELECT X, COUNT(*) FROM EMPTYT GROUP BY X", 4);
  EXPECT_EQ(r.rows.size(), 0u);
}

TEST_F(ParallelExecTest, CancelAbortsWorkersAndPoolStaysUsable) {
  Session session(db_.get());
  session.set_max_dop(4);
  session.set_force_parallel(true);
  std::atomic<bool> cancel{true};
  ExecLimits limits;
  limits.cancel = &cancel;
  session.set_limits(limits);
  auto r = session.ExecuteQuery("SELECT B, COUNT(*) FROM BIG GROUP BY B");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);

  // The abort must leave the shared worker pool reusable: clear the flag and
  // the same session runs the same parallel plan to completion.
  cancel.store(false);
  auto again = session.ExecuteQuery("SELECT B, COUNT(*) FROM BIG GROUP BY B");
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->rows.size(), 20u);
}

TEST_F(ParallelExecTest, DeadlineAbortsWorkers) {
  Session session(db_.get());
  session.set_max_dop(4);
  session.set_force_parallel(true);
  ExecLimits limits;
  limits.has_deadline = true;
  limits.deadline = std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1);  // Already expired.
  session.set_limits(limits);
  auto r = session.ExecuteQuery("SELECT B, COUNT(*) FROM BIG GROUP BY B");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);

  session.set_limits(ExecLimits{});
  auto again = session.ExecuteQuery("SELECT B, COUNT(*) FROM BIG GROUP BY B");
  ASSERT_TRUE(again.ok()) << again.status().ToString();
}

TEST_F(ParallelExecTest, BufferBudgetIsSharedAcrossWorkers) {
  Session session(db_.get());
  session.set_max_dop(4);
  session.set_force_parallel(true);
  ExecLimits limits;
  limits.max_buffer_gets = 8;  // Far below one worker's share of the scan.
  session.set_limits(limits);
  auto r = session.ExecuteQuery("SELECT B, COUNT(*) FROM BIG GROUP BY B");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);

  session.set_limits(ExecLimits{});
  auto again = session.ExecuteQuery("SELECT B, COUNT(*) FROM BIG GROUP BY B");
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->rows.size(), 20u);
}

// ---------------------------------------------------------------------------
// Plan selection: the startup penalty and the morsel cap keep small queries
// serial; big aggregating fragments take the exchange.

TEST_F(ParallelExecTest, SmallTableStaysSerialWithoutForce) {
  Session session(db_.get());
  session.set_max_dop(4);  // Cost-based: no force_parallel.
  auto stmt = session.Prepare("SELECT K, COUNT(*) FROM DIM GROUP BY K");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->Explain().find("Exchange"), std::string::npos)
      << stmt->Explain();
}

TEST_F(ParallelExecTest, BigAggregationChoosesExchange) {
  Session session(db_.get());
  session.set_max_dop(4);  // Cost-based: no force_parallel.
  auto stmt = session.Prepare("SELECT B, COUNT(*) FROM BIG GROUP BY B");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  std::string plan = stmt->Explain();
  EXPECT_NE(plan.find("Exchange"), std::string::npos) << plan;
  EXPECT_NE(plan.find("dop="), std::string::npos) << plan;
  auto r = stmt->Execute();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->stats.parallel_workers, 1u);
}

TEST_F(ParallelExecTest, SerialAndParallelPlansCoexistInCache) {
  PlanCache cache(16);
  Session serial(db_.get(), &cache);
  Session parallel(db_.get(), &cache);
  parallel.set_max_dop(4);
  const std::string sql = "SELECT B, COUNT(*) FROM BIG GROUP BY B";
  auto s = serial.Prepare(sql);
  auto p = parallel.Prepare(sql);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(s->Explain().find("Exchange"), std::string::npos);
  EXPECT_NE(p->Explain().find("Exchange"), std::string::npos);
  // Distinct dop-suffixed keys: two entries, no cross-contamination.
  EXPECT_EQ(cache.size(), 2u);
}

// ---------------------------------------------------------------------------
// 200-seed forced-parallel differential fuzz: every eligible engine plan
// runs under an exchange at dop 4 while the reference executor (and the
// index-less twin) results are compared as multisets — morsel interleaving
// must never change WHAT is returned, only the order.

TEST(ParallelFuzzGate, TwoHundredSeedsForcedParallelClean) {
  FuzzOptions options;
  options.queries_per_seed = 3;
  options.check_baselines = false;
  options.metamorphic = false;
  options.record_calibration = false;
  options.max_dop = 4;
  FuzzReport report;
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    SeedResult result = RunFuzzSeed(seed, options, &report);
    for (const std::string& v : result.violations) {
      ADD_FAILURE() << v;
    }
  }
  EXPECT_EQ(report.seeds, 200u);
  EXPECT_EQ(report.queries, 600u);
}

}  // namespace
}  // namespace systemr
