#include "sql/parser.h"

#include <gtest/gtest.h>

#include "sql/lexer.h"

namespace systemr {
namespace {

TEST(LexerTest, BasicTokens) {
  auto tokens = Lex("SELECT name FROM emp WHERE sal >= 100.5 AND x <> 'a''b'");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenType> types;
  for (const Token& t : *tokens) types.push_back(t.type);
  EXPECT_EQ(types[0], TokenType::kSelect);
  EXPECT_EQ(types[1], TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[1].text, "NAME") << "identifiers are upper-cased";
  EXPECT_EQ(types[5], TokenType::kIdentifier);
  EXPECT_EQ(types[6], TokenType::kGe);
  EXPECT_EQ(types[7], TokenType::kRealLiteral);
  EXPECT_DOUBLE_EQ((*tokens)[7].real_value, 100.5);
  EXPECT_EQ(types[10], TokenType::kNe);
  EXPECT_EQ((*tokens)[11].text, "a'b") << "escaped quote";
  EXPECT_EQ(types.back(), TokenType::kEof);
}

TEST(LexerTest, CommentsAndErrors) {
  auto ok = Lex("SELECT 1 -- comment\nFROM t");
  ASSERT_TRUE(ok.ok());
  EXPECT_FALSE(Lex("SELECT 'unterminated").ok());
  EXPECT_FALSE(Lex("SELECT #").ok());
}

TEST(ParserTest, PaperFigure1Query) {
  auto stmt = Parse(
      "SELECT NAME, TITLE, SAL, DNAME "
      "FROM EMP, DEPT, JOB "
      "WHERE TITLE='CLERK' AND LOC='DENVER' "
      "AND EMP.DNO=DEPT.DNO AND EMP.JOB=JOB.JOB");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->kind, Statement::Kind::kSelect);
  const SelectStmt& s = *stmt->select;
  EXPECT_EQ(s.select_list.size(), 4u);
  EXPECT_EQ(s.from.size(), 3u);
  EXPECT_EQ(s.from[1].table, "DEPT");
  ASSERT_NE(s.where, nullptr);
  // WHERE is a left-deep AND chain of 4 conjuncts.
  EXPECT_EQ(s.where->kind, ExprKind::kAnd);
}

TEST(ParserTest, CorrelationNames) {
  auto stmt = Parse("SELECT X.NAME FROM EMPLOYEE X WHERE X.SAL > 5");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select->from[0].table, "EMPLOYEE");
  EXPECT_EQ(stmt->select->from[0].correlation, "X");
}

TEST(ParserTest, BetweenInAndNot) {
  auto stmt = Parse(
      "SELECT A FROM T WHERE A BETWEEN 1 AND 5 AND B IN (1,2,3) "
      "AND NOT C = 4 AND D NOT IN (7, 8)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  std::string s = stmt->select->where->ToString();
  EXPECT_NE(s.find("BETWEEN"), std::string::npos);
  EXPECT_NE(s.find("IN ("), std::string::npos);
  EXPECT_NE(s.find("NOT"), std::string::npos);
}

TEST(ParserTest, OrPrecedence) {
  auto stmt = Parse("SELECT A FROM T WHERE A=1 OR B=2 AND C=3");
  ASSERT_TRUE(stmt.ok());
  // AND binds tighter: OR(A=1, AND(B=2, C=3)).
  EXPECT_EQ(stmt->select->where->kind, ExprKind::kOr);
  EXPECT_EQ(stmt->select->where->children[1]->kind, ExprKind::kAnd);
}

TEST(ParserTest, ArithmeticPrecedence) {
  auto stmt = Parse("SELECT A + B * 2 FROM T");
  ASSERT_TRUE(stmt.ok());
  const Expr& e = *stmt->select->select_list[0].expr;
  ASSERT_EQ(e.kind, ExprKind::kArith);
  EXPECT_EQ(e.arith_op, '+');
  EXPECT_EQ(e.children[1]->kind, ExprKind::kArith);
  EXPECT_EQ(e.children[1]->arith_op, '*');
}

TEST(ParserTest, ScalarSubquery) {
  auto stmt = Parse(
      "SELECT NAME FROM EMPLOYEE "
      "WHERE SALARY = (SELECT AVG(SALARY) FROM EMPLOYEE)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const Expr& w = *stmt->select->where;
  ASSERT_EQ(w.kind, ExprKind::kCompare);
  EXPECT_EQ(w.children[1]->kind, ExprKind::kSubquery);
  EXPECT_EQ(w.children[1]->subquery->select_list[0].expr->kind,
            ExprKind::kAggregate);
}

TEST(ParserTest, InSubquery) {
  auto stmt = Parse(
      "SELECT NAME FROM EMPLOYEE WHERE DNO IN "
      "(SELECT DNO FROM DEPARTMENT WHERE LOCATION='DENVER')");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select->where->kind, ExprKind::kInSubquery);
}

TEST(ParserTest, GroupOrderBy) {
  auto stmt = Parse(
      "SELECT DNO, AVG(SAL) FROM EMP GROUP BY DNO ORDER BY DNO DESC");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->select->group_by.size(), 1u);
  ASSERT_EQ(stmt->select->order_by.size(), 1u);
  EXPECT_FALSE(stmt->select->order_by[0].asc);
}

TEST(ParserTest, CountStar) {
  auto stmt = Parse("SELECT COUNT(*) FROM T");
  ASSERT_TRUE(stmt.ok());
  const Expr& e = *stmt->select->select_list[0].expr;
  EXPECT_EQ(e.kind, ExprKind::kAggregate);
  EXPECT_EQ(e.agg, AggFunc::kCount);
  EXPECT_TRUE(e.children.empty());
}

TEST(ParserTest, CreateTable) {
  auto stmt = Parse("CREATE TABLE EMP (NAME VARCHAR(20), DNO INT, SAL REAL)");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->kind, Statement::Kind::kCreateTable);
  EXPECT_EQ(stmt->create_table->columns.size(), 3u);
  EXPECT_EQ(stmt->create_table->columns[0].second, ValueType::kString);
  EXPECT_EQ(stmt->create_table->columns[1].second, ValueType::kInt64);
  EXPECT_EQ(stmt->create_table->columns[2].second, ValueType::kDouble);
}

TEST(ParserTest, CreateIndexVariants) {
  auto a = Parse("CREATE INDEX I1 ON T (A)");
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(a->create_index->unique);
  auto b = Parse("CREATE UNIQUE CLUSTERED INDEX I2 ON T (A, B)");
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->create_index->unique);
  EXPECT_TRUE(b->create_index->clustered);
  EXPECT_EQ(b->create_index->columns.size(), 2u);
}

TEST(ParserTest, InsertValues) {
  auto stmt =
      Parse("INSERT INTO T VALUES (1, 'x', -2.5), (2, 'y', NULL)");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->insert->rows.size(), 2u);
  EXPECT_EQ(stmt->insert->rows[0][2].AsReal(), -2.5);
  EXPECT_TRUE(stmt->insert->rows[1][2].is_null());
}

TEST(ParserTest, UpdateStatistics) {
  auto stmt = Parse("UPDATE STATISTICS EMP");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->kind, Statement::Kind::kUpdateStatistics);
  EXPECT_EQ(stmt->update_statistics->table, "EMP");
}

TEST(ParserTest, Explain) {
  auto stmt = Parse("EXPLAIN SELECT A FROM T");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->kind, Statement::Kind::kExplain);
}

TEST(ParserTest, Script) {
  auto stmts = ParseScript(
      "CREATE TABLE T (A INT); INSERT INTO T VALUES (1); SELECT A FROM T;");
  ASSERT_TRUE(stmts.ok()) << stmts.status().ToString();
  EXPECT_EQ(stmts->size(), 3u);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(Parse("SELECT FROM T").ok());
  EXPECT_FALSE(Parse("SELECT A FROM").ok());
  EXPECT_FALSE(Parse("SELECT A FROM T WHERE").ok());
  EXPECT_FALSE(Parse("SELECT A FROM T extra garbage here").ok());
  EXPECT_FALSE(Parse("CREATE TABLE T ()").ok());
  EXPECT_FALSE(Parse("").ok());
}

}  // namespace
}  // namespace systemr
