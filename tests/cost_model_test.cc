// TABLE 2 cost formulas and the §5 join/sort cost model.
#include "optimizer/cost_model.h"

#include <gtest/gtest.h>

namespace systemr {
namespace {

TableInfo MakeTable(uint64_t ncard, uint64_t tcard, double p) {
  TableInfo t;
  t.has_stats = true;
  t.ncard = ncard;
  t.tcard = tcard;
  t.p = p;
  return t;
}

IndexInfo MakeIndex(uint64_t nindx, bool clustered, bool unique = false) {
  IndexInfo i;
  i.nindx = nindx;
  i.clustered = clustered;
  i.unique = unique;
  return i;
}

TEST(CostModelTest, SegmentScanFormula) {
  CostModel cm({/*w=*/0.1, /*buffer_pages=*/100});
  TableInfo t = MakeTable(10000, 200, 0.5);
  PathCost c = cm.SegmentScan(t, 1000);
  // TCARD/P + W*RSICARD = 200/0.5 + 0.1*1000.
  EXPECT_DOUBLE_EQ(c.pages, 400.0);
  EXPECT_DOUBLE_EQ(c.rsi, 1000.0);
  EXPECT_DOUBLE_EQ(c.cost, 400.0 + 100.0);
  EXPECT_EQ(c.situation, AccessSituation::kSegmentScan);
}

TEST(CostModelTest, UniqueIndexEqual) {
  CostModel cm({0.1, 100});
  TableInfo t = MakeTable(10000, 200, 1.0);
  IndexInfo i = MakeIndex(50, false, true);
  PathCost c = cm.IndexScan(t, i, true, 0.0001, 1, /*unique_equal=*/true);
  // 1 + 1 + W.
  EXPECT_DOUBLE_EQ(c.cost, 2.0 + 0.1);
  EXPECT_EQ(c.situation, AccessSituation::kUniqueIndexEqual);
}

TEST(CostModelTest, ClusteredMatching) {
  CostModel cm({0.1, 100});
  TableInfo t = MakeTable(10000, 200, 1.0);
  IndexInfo i = MakeIndex(50, /*clustered=*/true);
  PathCost c = cm.IndexScan(t, i, true, 0.01, 100, false);
  // F(preds)*(NINDX + TCARD) + W*RSICARD = 0.01*(50+200) + 0.1*100.
  EXPECT_DOUBLE_EQ(c.pages, 2.5);
  EXPECT_DOUBLE_EQ(c.cost, 2.5 + 10.0);
  EXPECT_EQ(c.situation, AccessSituation::kClusteredIndexMatching);
}

TEST(CostModelTest, NonClusteredMatchingLargeRelation) {
  CostModel cm({0.1, /*buffer_pages=*/10});
  TableInfo t = MakeTable(10000, 200, 1.0);
  IndexInfo i = MakeIndex(50, /*clustered=*/false);
  PathCost c = cm.IndexScan(t, i, true, 0.5, 5000, false);
  // F*(NINDX+TCARD) = 125 > buffer → F*(NINDX + NCARD) = 0.5 * 10050.
  EXPECT_DOUBLE_EQ(c.pages, 5025.0);
  EXPECT_EQ(c.situation, AccessSituation::kNonClusteredIndexMatching);
}

TEST(CostModelTest, NonClusteredMatchingFitsInBuffer) {
  CostModel cm({0.1, /*buffer_pages=*/1000});
  TableInfo t = MakeTable(10000, 200, 1.0);
  IndexInfo i = MakeIndex(50, false);
  PathCost c = cm.IndexScan(t, i, true, 0.5, 5000, false);
  // 0.5*(50+200) = 125 <= 1000 → the cheaper TCARD variant applies.
  EXPECT_DOUBLE_EQ(c.pages, 125.0);
}

TEST(CostModelTest, NonMatchingVariants) {
  CostModel cm({0.1, /*buffer_pages=*/10});
  TableInfo t = MakeTable(10000, 200, 1.0);
  PathCost clustered =
      cm.IndexScan(t, MakeIndex(50, true), false, 1.0, 10000, false);
  EXPECT_DOUBLE_EQ(clustered.pages, 250.0);  // NINDX + TCARD.
  EXPECT_EQ(clustered.situation, AccessSituation::kClusteredIndexNonMatching);
  PathCost noncl =
      cm.IndexScan(t, MakeIndex(50, false), false, 1.0, 10000, false);
  EXPECT_DOUBLE_EQ(noncl.pages, 10050.0);  // NINDX + NCARD (no buffer fit).
  EXPECT_EQ(noncl.situation, AccessSituation::kNonClusteredIndexNonMatching);
}

TEST(CostModelTest, JoinCostFormula) {
  CostModel cm({0.1, 100});
  // C-outer + N * C-inner.
  EXPECT_DOUBLE_EQ(cm.JoinCost(100.0, 50.0, 3.0), 250.0);
}

TEST(CostModelTest, SortedInnerPerProbe) {
  CostModel cm({0.1, 100});
  // TEMPPAGES/N + W*RSICARD.
  EXPECT_DOUBLE_EQ(cm.SortedInnerPerProbe(200.0, 50.0, 4.0), 4.0 + 0.4);
}

TEST(CostModelTest, TempPages) {
  CostModel cm({0.1, 100});
  // 100-byte rows → 40 per 4K page.
  EXPECT_DOUBLE_EQ(cm.TempPages(4000, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(cm.TempPages(1, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(cm.TempPages(0, 100.0), 1.0);
}

TEST(CostModelTest, SortPassesGrowWithSize) {
  CostModel cm({0.1, /*buffer_pages=*/10});
  EXPECT_EQ(cm.SortPasses(5), 0) << "one run";
  EXPECT_EQ(cm.SortPasses(50), 1) << "5 runs merged once";
  EXPECT_GE(cm.SortPasses(10000), 2);
}

TEST(CostModelTest, SortCostMonotoneInRows) {
  CostModel cm({0.1, 100});
  double small = cm.SortCost(10, 1000, 50);
  double large = cm.SortCost(10, 100000, 50);
  EXPECT_LT(small, large);
  // Includes the input cost.
  EXPECT_GT(cm.SortCost(500, 1000, 50), cm.SortCost(10, 1000, 50));
}

TEST(CostModelTest, TupleBytesFromStats) {
  TableInfo t = MakeTable(1000, 25, 1.0);
  // 25 pages * 4096 / 1000 tuples = 102.4 bytes.
  EXPECT_NEAR(CostModel::TupleBytes(t), 102.4, 0.01);
  TableInfo nostats;
  EXPECT_GT(CostModel::TupleBytes(nostats), 0);
}

TEST(CostModelTest, WeightingFactorShiftsChoice) {
  TableInfo t = MakeTable(10000, 500, 1.0);
  IndexInfo idx = MakeIndex(100, /*clustered=*/false);
  // Matching scan touching 10% of a non-clustered index vs segment scan.
  // With W=0: pages dominate. With large W: RSI calls dominate and the two
  // paths converge since RSICARD is equal; ordering must stay consistent.
  for (double w : {0.0, 0.05, 0.5, 5.0}) {
    CostModel cm({w, 50});
    PathCost seg = cm.SegmentScan(t, 1000);
    PathCost ind = cm.IndexScan(t, idx, true, 0.1, 1000, false);
    EXPECT_DOUBLE_EQ(seg.cost - ind.cost, seg.pages - ind.pages)
        << "equal RSICARD means W cancels in the comparison";
  }
}

}  // namespace
}  // namespace systemr
