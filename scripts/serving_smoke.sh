#!/usr/bin/env bash
# Loopback smoke for the serving front end: start a real serverd process,
# drive it with a real `repl --connect` session over TCP, and assert on the
# replies — the end-to-end path a unit test can't cover (two processes, real
# sockets, signal-driven shutdown).
#
# Usage: scripts/serving_smoke.sh [build-dir]   (default: build)
set -euo pipefail
build="${1:-build}"
tmp="$(mktemp -d)"
server_pid=""
trap '[ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT

cat > "$tmp/init.sql" <<'EOF'
CREATE TABLE T (PK INT, V INT);
INSERT INTO T VALUES (1, 10), (2, 20), (3, 30);
CREATE UNIQUE INDEX T_PK ON T (PK);
UPDATE STATISTICS T;
EOF

"$build/tools/serverd" --port 0 --port-file "$tmp/port" \
  --init "$tmp/init.sql" &
server_pid=$!
for _ in $(seq 100); do [ -s "$tmp/port" ] && break; sleep 0.1; done
[ -s "$tmp/port" ] || { echo "serverd never wrote its port"; exit 1; }

cat > "$tmp/smoke.sql" <<'EOF'
SELECT V FROM T WHERE PK = 2;
PREPARE pt AS SELECT V FROM T WHERE PK = ?;
EXECUTE pt (3);
BEGIN;
INSERT INTO T VALUES (4, 40);
COMMIT;
SELECT COUNT(*) FROM T;
\stats
\quit
EOF

"$build/tools/repl" --connect ":$(cat "$tmp/port")" < "$tmp/smoke.sql" \
  | tee "$tmp/smoke.out"

grep -q '^20$\|| *20' "$tmp/smoke.out"          # point lookup answer
grep -q '^30$\|| *30' "$tmp/smoke.out"          # prepared-statement answer
grep -q '^4$\|| *4'  "$tmp/smoke.out"           # COUNT(*) after the insert
grep -q 'statements:.*admitted=' "$tmp/smoke.out"  # \stats over the wire

# Graceful shutdown: SIGTERM must drain and exit 0, printing final stats.
kill -TERM "$server_pid"
wait "$server_pid"
server_pid=""
echo "serving smoke: OK"
