// Interactive SQL shell over the systemr engine. Reads semicolon-terminated
// statements from stdin; `EXPLAIN SELECT ...` prints the chosen access plan.
// Start with a ready-made database:
//
//   build/examples/sql_shell            # empty database
//   build/examples/sql_shell --paper    # the paper's EMP/DEPT/JOB example
#include <cstdio>
#include <iostream>
#include <string>

#include "db/database.h"
#include "workload/datagen.h"

using namespace systemr;

int main(int argc, char** argv) {
  Database db(/*buffer_pages=*/256);
  if (argc > 1 && std::string(argv[1]) == "--paper") {
    DataGen gen(&db, 1979);
    auto st = gen.LoadPaperExample(20000, 100, 50);
    if (!st.ok()) {
      std::printf("load failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("Loaded EMP(20000)/DEPT(100)/JOB(50).\n");
  }
  std::printf(
      "systemr SQL shell. Statements end with ';'. Ctrl-D to exit.\n"
      "Supported: SELECT [DISTINCT] (joins, subqueries, GROUP BY/HAVING,\n"
      "ORDER BY, LIKE), CREATE TABLE, CREATE [UNIQUE] [CLUSTERED] INDEX,\n"
      "INSERT, DELETE, UPDATE ... SET, UPDATE STATISTICS, EXPLAIN SELECT.\n");

  std::string buffer;
  std::string line;
  std::printf("systemr> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    buffer += line;
    buffer += "\n";
    if (buffer.find(';') == std::string::npos) {
      std::printf("      -> ");
      std::fflush(stdout);
      continue;
    }
    auto parsed = Parse(buffer);
    if (!parsed.ok()) {
      std::printf("error: %s\n", parsed.status().ToString().c_str());
    } else if (parsed->kind == Statement::Kind::kSelect ||
               parsed->kind == Statement::Kind::kExplain) {
      auto result = db.Query(buffer);
      if (!result.ok()) {
        std::printf("error: %s\n", result.status().ToString().c_str());
      } else if (!result->plan_text.empty()) {
        std::printf("%s", result->plan_text.c_str());
      } else {
        std::printf("%s", result->ToString(40).c_str());
        std::printf("[est. cost %.1f | actual cost %.1f]\n", result->est_cost,
                    result->actual_cost);
      }
    } else if (parsed->kind == Statement::Kind::kDelete ||
               parsed->kind == Statement::Kind::kUpdate) {
      auto affected = db.Mutate(buffer);
      if (affected.ok()) {
        std::printf("%zu row(s) affected\n", *affected);
      } else {
        std::printf("error: %s\n", affected.status().ToString().c_str());
      }
    } else {
      Status st = db.Execute(buffer);
      std::printf("%s\n", st.ok() ? "ok" : st.ToString().c_str());
    }
    buffer.clear();
    std::printf("systemr> ");
    std::fflush(stdout);
  }
  std::printf("\n");
  return 0;
}
