// Quickstart: create a database, load data, build indexes, gather
// statistics, and watch the System R optimizer pick access paths.
//
//   build/examples/quickstart
#include <cstdio>

#include "db/database.h"

using systemr::Database;
using systemr::QueryResult;

namespace {

void Run(Database& db, const std::string& sql) {
  std::printf("\nsystemr> %s\n", sql.c_str());
  auto result = db.Query(sql);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s", result->ToString(10).c_str());
  std::printf("[est. cost %.1f | actual cost %.1f | %llu page I/O, %llu RSI "
              "calls]\n",
              result->est_cost, result->actual_cost,
              static_cast<unsigned long long>(result->stats.page_io()),
              static_cast<unsigned long long>(result->stats.rsi_calls));
}

void Explain(Database& db, const std::string& sql) {
  std::printf("\nsystemr> EXPLAIN %s\n", sql.c_str());
  auto plan = db.Explain(sql);
  std::printf("%s", plan.ok() ? plan->c_str()
                              : plan.status().ToString().c_str());
}

}  // namespace

int main() {
  // A Database owns the storage system (4 KiB pages behind a metered LRU
  // buffer pool), the catalog, the optimizer, and the executor.
  Database db(/*buffer_pages=*/128);

  auto status = db.ExecuteScript(R"(
    CREATE TABLE EMP (NAME STRING, DNO INT, JOB STRING, SAL INT);
    CREATE TABLE DEPT (DNO INT, DNAME STRING, LOC STRING);
    INSERT INTO DEPT VALUES (1, 'TOOLS',  'DENVER'),
                            (2, 'SALES',  'SAN JOSE'),
                            (3, 'ACCTS',  'DENVER');
    INSERT INTO EMP VALUES ('SMITH', 1, 'CLERK',   9000),
                           ('JONES', 1, 'MECHANIC', 12000),
                           ('ADAMS', 2, 'CLERK',   8500),
                           ('BROWN', 2, 'SALES',   15000),
                           ('ZHANG', 3, 'CLERK',   9500),
                           ('DAVIS', 3, 'TYPIST',  7000);
    CREATE UNIQUE INDEX DEPT_DNO ON DEPT (DNO);
    CREATE CLUSTERED INDEX EMP_DNO ON EMP (DNO);
    UPDATE STATISTICS EMP;
    UPDATE STATISTICS DEPT;
  )");
  if (!status.ok()) {
    std::printf("setup failed: %s\n", status.ToString().c_str());
    return 1;
  }

  Run(db, "SELECT NAME, SAL FROM EMP WHERE DNO = 1");
  Run(db,
      "SELECT NAME, DNAME FROM EMP, DEPT "
      "WHERE EMP.DNO = DEPT.DNO AND LOC = 'DENVER' ORDER BY NAME");
  Run(db, "SELECT DNO, COUNT(*), AVG(SAL) FROM EMP GROUP BY DNO");
  Run(db,
      "SELECT NAME FROM EMP WHERE SAL > (SELECT AVG(SAL) FROM EMP)");

  // EXPLAIN shows the chosen access path with the paper's cost annotations.
  Explain(db,
          "SELECT NAME, DNAME FROM EMP, DEPT "
          "WHERE EMP.DNO = DEPT.DNO AND LOC = 'DENVER'");
  return 0;
}
