// Index advisor: a what-if study built on the public optimizer API. The same
// workload is planned and executed under several physical designs (no
// indexes / non-clustered / clustered / composite), showing how the System R
// cost model drives access path selection — and how well its predictions
// track metered reality.
//
//   build/examples/index_advisor
#include <cstdio>
#include <vector>

#include "db/database.h"
#include "workload/datagen.h"

using namespace systemr;

namespace {

struct Design {
  const char* name;
  std::vector<IndexSpec> indexes;
  bool cluster_by_region;
};

const char* kWorkload[] = {
    "SELECT ORDER_ID FROM ORDERS WHERE REGION = 17",
    "SELECT ORDER_ID FROM ORDERS WHERE REGION BETWEEN 10 AND 14",
    "SELECT ORDER_ID, AMOUNT FROM ORDERS WHERE CUST = 4242",
    "SELECT REGION, COUNT(*), SUM(AMOUNT) FROM ORDERS "
    "WHERE REGION < 8 GROUP BY REGION",
};

void Evaluate(const Design& design) {
  Database db(128);
  DataGen gen(&db, 5);
  TableSpec orders;
  orders.name = "ORDERS";
  orders.num_rows = 60000;
  orders.columns = {{"ORDER_ID", ValueType::kInt64, 60000, 0, true},
                    {"CUST", ValueType::kInt64, 8000, 0, false},
                    {"REGION", ValueType::kInt64, 25, 0, false},
                    {"AMOUNT", ValueType::kInt64, 10000, 0, false}};
  orders.indexes = design.indexes;
  if (design.cluster_by_region) orders.cluster_by = "REGION";
  if (!gen.CreateAndLoad(orders).ok()) {
    std::printf("load failed\n");
    return;
  }

  std::printf("\n=== design: %s ===\n", design.name);
  double total_est = 0, total_actual = 0;
  for (const char* sql : kWorkload) {
    auto prepared = db.Prepare(sql);
    if (!prepared.ok()) {
      std::printf("  prepare failed: %s\n",
                  prepared.status().ToString().c_str());
      continue;
    }
    db.rss().pool().FlushAll();
    auto result = db.Run(*prepared);
    if (!result.ok()) continue;
    // One-line summary of the access path the optimizer picked.
    std::string plan;
    for (PlanRef node = prepared->root; node != nullptr; node = node->left) {
      if (node->kind == PlanKind::kSegScan) plan = "segment scan";
      if (node->kind == PlanKind::kIndexScan) {
        plan = "index " + node->scan.index->name;
      }
    }
    std::printf("  est %8.1f  actual %8.1f  via %-22s  %s\n",
                prepared->est_cost, result->actual_cost, plan.c_str(), sql);
    total_est += prepared->est_cost;
    total_actual += result->actual_cost;
  }
  std::printf("  workload total: est %.1f, actual %.1f\n", total_est,
              total_actual);
}

}  // namespace

int main() {
  std::printf("What-if index study over a 60000-row ORDERS table.\n");
  Evaluate({"no indexes", {}, false});
  Evaluate({"non-clustered REGION index",
            {{"ORD_REGION", {"REGION"}, false, false}},
            false});
  Evaluate({"clustered REGION index",
            {{"ORD_REGION", {"REGION"}, false, true}},
            true});
  Evaluate({"clustered REGION + unique CUST-leading composite",
            {{"ORD_REGION", {"REGION"}, false, true},
             {"ORD_CUST", {"CUST", "ORDER_ID"}, false, false}},
            true});
  std::printf(
      "\nReading the results: the clustered REGION index wins the REGION\n"
      "queries because Table 2 charges it F*(NINDX+TCARD) instead of\n"
      "F*(NINDX+NCARD); the composite index serves the CUST probe via its\n"
      "leading-column prefix (the paper's index-matching rule).\n");
  return 0;
}
