// Payroll analytics on the paper's EMP/DEPT/JOB database: the Figure-1 join,
// grouped reporting, and the §6 nested-query examples (employees earning
// more than their manager / their manager's manager), at realistic scale.
//
//   build/examples/payroll_analytics
#include <cstdio>

#include "db/database.h"
#include "workload/datagen.h"

using systemr::Database;
using systemr::DataGen;

namespace {

void Run(Database& db, const char* label, const std::string& sql,
         size_t show = 5) {
  std::printf("\n--- %s ---\n%s\n", label, sql.c_str());
  auto result = db.Query(sql);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s", result->ToString(show).c_str());
  std::printf("[est. cost %.1f | actual cost %.1f]\n", result->est_cost,
              result->actual_cost);
}

}  // namespace

int main() {
  Database db(/*buffer_pages=*/256);
  DataGen gen(&db, 2026);
  auto status = gen.LoadPaperExample(/*emps=*/20000, /*depts=*/100,
                                     /*jobs=*/50);
  if (!status.ok()) {
    std::printf("load failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("Loaded EMP (20000 rows), DEPT (100), JOB (50) with the "
              "paper's access paths.\n");

  Run(db, "Figure 1: clerks in Denver departments",
      "SELECT NAME, TITLE, SAL, DNAME FROM EMP, DEPT, JOB "
      "WHERE TITLE = 'CLERK' AND LOC = 'DENVER' "
      "AND EMP.DNO = DEPT.DNO AND EMP.JOB = JOB.JOB");

  Run(db, "Headcount and mean salary per Denver department",
      "SELECT DNAME, COUNT(*), AVG(SAL) FROM EMP, DEPT "
      "WHERE EMP.DNO = DEPT.DNO AND LOC = 'DENVER' "
      "GROUP BY DNAME ORDER BY DNAME",
      8);

  Run(db, "Best-paid employees in each rare job (salary above job average)",
      "SELECT NAME, SAL, TITLE FROM EMP, JOB "
      "WHERE EMP.JOB = JOB.JOB AND SAL > 45000 AND EMP.JOB > 40 "
      "ORDER BY SAL DESC",
      8);

  Run(db, "Nested query (§6): departments that employ mechanics",
      "SELECT DNAME FROM DEPT WHERE DNO IN "
      "(SELECT DNO FROM EMP WHERE JOB = 12)",
      8);

  Run(db, "Correlated nested query (§6): employees paid above their "
      "department's average",
      "SELECT NAME, SAL FROM EMP X WHERE SAL > "
      "(SELECT AVG(SAL) FROM EMP WHERE DNO = X.DNO) AND X.DNO = 7",
      8);

  auto plan = db.Explain(
      "SELECT NAME, TITLE, SAL, DNAME FROM EMP, DEPT, JOB "
      "WHERE TITLE = 'CLERK' AND LOC = 'DENVER' "
      "AND EMP.DNO = DEPT.DNO AND EMP.JOB = JOB.JOB");
  if (plan.ok()) {
    std::printf("\n--- Figure 1 access plan ---\n%s", plan->c_str());
  }
  return 0;
}
