# Empty dependencies file for payroll_analytics.
# This may be replaced when dependencies are built.
