
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/systemr.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/systemr.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/catalog/update_statistics.cc" "src/CMakeFiles/systemr.dir/catalog/update_statistics.cc.o" "gcc" "src/CMakeFiles/systemr.dir/catalog/update_statistics.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/systemr.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/systemr.dir/common/rng.cc.o.d"
  "/root/repo/src/common/schema.cc" "src/CMakeFiles/systemr.dir/common/schema.cc.o" "gcc" "src/CMakeFiles/systemr.dir/common/schema.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/systemr.dir/common/status.cc.o" "gcc" "src/CMakeFiles/systemr.dir/common/status.cc.o.d"
  "/root/repo/src/common/value.cc" "src/CMakeFiles/systemr.dir/common/value.cc.o" "gcc" "src/CMakeFiles/systemr.dir/common/value.cc.o.d"
  "/root/repo/src/db/database.cc" "src/CMakeFiles/systemr.dir/db/database.cc.o" "gcc" "src/CMakeFiles/systemr.dir/db/database.cc.o.d"
  "/root/repo/src/db/dml.cc" "src/CMakeFiles/systemr.dir/db/dml.cc.o" "gcc" "src/CMakeFiles/systemr.dir/db/dml.cc.o.d"
  "/root/repo/src/exec/aggregate.cc" "src/CMakeFiles/systemr.dir/exec/aggregate.cc.o" "gcc" "src/CMakeFiles/systemr.dir/exec/aggregate.cc.o.d"
  "/root/repo/src/exec/exec_context.cc" "src/CMakeFiles/systemr.dir/exec/exec_context.cc.o" "gcc" "src/CMakeFiles/systemr.dir/exec/exec_context.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/CMakeFiles/systemr.dir/exec/executor.cc.o" "gcc" "src/CMakeFiles/systemr.dir/exec/executor.cc.o.d"
  "/root/repo/src/exec/expr_eval.cc" "src/CMakeFiles/systemr.dir/exec/expr_eval.cc.o" "gcc" "src/CMakeFiles/systemr.dir/exec/expr_eval.cc.o.d"
  "/root/repo/src/exec/joins.cc" "src/CMakeFiles/systemr.dir/exec/joins.cc.o" "gcc" "src/CMakeFiles/systemr.dir/exec/joins.cc.o.d"
  "/root/repo/src/exec/operators.cc" "src/CMakeFiles/systemr.dir/exec/operators.cc.o" "gcc" "src/CMakeFiles/systemr.dir/exec/operators.cc.o.d"
  "/root/repo/src/exec/sort.cc" "src/CMakeFiles/systemr.dir/exec/sort.cc.o" "gcc" "src/CMakeFiles/systemr.dir/exec/sort.cc.o.d"
  "/root/repo/src/exec/subquery_eval.cc" "src/CMakeFiles/systemr.dir/exec/subquery_eval.cc.o" "gcc" "src/CMakeFiles/systemr.dir/exec/subquery_eval.cc.o.d"
  "/root/repo/src/optimizer/access_path_gen.cc" "src/CMakeFiles/systemr.dir/optimizer/access_path_gen.cc.o" "gcc" "src/CMakeFiles/systemr.dir/optimizer/access_path_gen.cc.o.d"
  "/root/repo/src/optimizer/baseline.cc" "src/CMakeFiles/systemr.dir/optimizer/baseline.cc.o" "gcc" "src/CMakeFiles/systemr.dir/optimizer/baseline.cc.o.d"
  "/root/repo/src/optimizer/bound_expr.cc" "src/CMakeFiles/systemr.dir/optimizer/bound_expr.cc.o" "gcc" "src/CMakeFiles/systemr.dir/optimizer/bound_expr.cc.o.d"
  "/root/repo/src/optimizer/cnf.cc" "src/CMakeFiles/systemr.dir/optimizer/cnf.cc.o" "gcc" "src/CMakeFiles/systemr.dir/optimizer/cnf.cc.o.d"
  "/root/repo/src/optimizer/cost_model.cc" "src/CMakeFiles/systemr.dir/optimizer/cost_model.cc.o" "gcc" "src/CMakeFiles/systemr.dir/optimizer/cost_model.cc.o.d"
  "/root/repo/src/optimizer/explain.cc" "src/CMakeFiles/systemr.dir/optimizer/explain.cc.o" "gcc" "src/CMakeFiles/systemr.dir/optimizer/explain.cc.o.d"
  "/root/repo/src/optimizer/join_enumerator.cc" "src/CMakeFiles/systemr.dir/optimizer/join_enumerator.cc.o" "gcc" "src/CMakeFiles/systemr.dir/optimizer/join_enumerator.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/CMakeFiles/systemr.dir/optimizer/optimizer.cc.o" "gcc" "src/CMakeFiles/systemr.dir/optimizer/optimizer.cc.o.d"
  "/root/repo/src/optimizer/order_classes.cc" "src/CMakeFiles/systemr.dir/optimizer/order_classes.cc.o" "gcc" "src/CMakeFiles/systemr.dir/optimizer/order_classes.cc.o.d"
  "/root/repo/src/optimizer/plan.cc" "src/CMakeFiles/systemr.dir/optimizer/plan.cc.o" "gcc" "src/CMakeFiles/systemr.dir/optimizer/plan.cc.o.d"
  "/root/repo/src/optimizer/selectivity.cc" "src/CMakeFiles/systemr.dir/optimizer/selectivity.cc.o" "gcc" "src/CMakeFiles/systemr.dir/optimizer/selectivity.cc.o.d"
  "/root/repo/src/rss/btree.cc" "src/CMakeFiles/systemr.dir/rss/btree.cc.o" "gcc" "src/CMakeFiles/systemr.dir/rss/btree.cc.o.d"
  "/root/repo/src/rss/buffer_pool.cc" "src/CMakeFiles/systemr.dir/rss/buffer_pool.cc.o" "gcc" "src/CMakeFiles/systemr.dir/rss/buffer_pool.cc.o.d"
  "/root/repo/src/rss/heap_file.cc" "src/CMakeFiles/systemr.dir/rss/heap_file.cc.o" "gcc" "src/CMakeFiles/systemr.dir/rss/heap_file.cc.o.d"
  "/root/repo/src/rss/page.cc" "src/CMakeFiles/systemr.dir/rss/page.cc.o" "gcc" "src/CMakeFiles/systemr.dir/rss/page.cc.o.d"
  "/root/repo/src/rss/rss.cc" "src/CMakeFiles/systemr.dir/rss/rss.cc.o" "gcc" "src/CMakeFiles/systemr.dir/rss/rss.cc.o.d"
  "/root/repo/src/rss/sarg.cc" "src/CMakeFiles/systemr.dir/rss/sarg.cc.o" "gcc" "src/CMakeFiles/systemr.dir/rss/sarg.cc.o.d"
  "/root/repo/src/rss/scan.cc" "src/CMakeFiles/systemr.dir/rss/scan.cc.o" "gcc" "src/CMakeFiles/systemr.dir/rss/scan.cc.o.d"
  "/root/repo/src/rss/segment.cc" "src/CMakeFiles/systemr.dir/rss/segment.cc.o" "gcc" "src/CMakeFiles/systemr.dir/rss/segment.cc.o.d"
  "/root/repo/src/sql/ast.cc" "src/CMakeFiles/systemr.dir/sql/ast.cc.o" "gcc" "src/CMakeFiles/systemr.dir/sql/ast.cc.o.d"
  "/root/repo/src/sql/binder.cc" "src/CMakeFiles/systemr.dir/sql/binder.cc.o" "gcc" "src/CMakeFiles/systemr.dir/sql/binder.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/systemr.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/systemr.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/systemr.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/systemr.dir/sql/parser.cc.o.d"
  "/root/repo/src/sql/token.cc" "src/CMakeFiles/systemr.dir/sql/token.cc.o" "gcc" "src/CMakeFiles/systemr.dir/sql/token.cc.o.d"
  "/root/repo/src/workload/datagen.cc" "src/CMakeFiles/systemr.dir/workload/datagen.cc.o" "gcc" "src/CMakeFiles/systemr.dir/workload/datagen.cc.o.d"
  "/root/repo/src/workload/querygen.cc" "src/CMakeFiles/systemr.dir/workload/querygen.cc.o" "gcc" "src/CMakeFiles/systemr.dir/workload/querygen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
