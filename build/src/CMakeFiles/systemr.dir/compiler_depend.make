# Empty compiler generated dependencies file for systemr.
# This may be replaced when dependencies are built.
