file(REMOVE_RECURSE
  "libsystemr.a"
)
