# Empty dependencies file for systemr.
# This may be replaced when dependencies are built.
