# Empty compiler generated dependencies file for paper_cases_test.
# This may be replaced when dependencies are built.
