file(REMOVE_RECURSE
  "CMakeFiles/paper_cases_test.dir/paper_cases_test.cc.o"
  "CMakeFiles/paper_cases_test.dir/paper_cases_test.cc.o.d"
  "paper_cases_test"
  "paper_cases_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_cases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
