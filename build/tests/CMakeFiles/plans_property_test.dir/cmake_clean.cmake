file(REMOVE_RECURSE
  "CMakeFiles/plans_property_test.dir/plans_property_test.cc.o"
  "CMakeFiles/plans_property_test.dir/plans_property_test.cc.o.d"
  "plans_property_test"
  "plans_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plans_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
