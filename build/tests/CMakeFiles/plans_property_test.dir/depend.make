# Empty dependencies file for plans_property_test.
# This may be replaced when dependencies are built.
