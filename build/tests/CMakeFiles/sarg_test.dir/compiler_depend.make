# Empty compiler generated dependencies file for sarg_test.
# This may be replaced when dependencies are built.
