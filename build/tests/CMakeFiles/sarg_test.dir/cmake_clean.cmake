file(REMOVE_RECURSE
  "CMakeFiles/sarg_test.dir/sarg_test.cc.o"
  "CMakeFiles/sarg_test.dir/sarg_test.cc.o.d"
  "sarg_test"
  "sarg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sarg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
