# Empty compiler generated dependencies file for bench_fig4_5_pairs.
# This may be replaced when dependencies are built.
