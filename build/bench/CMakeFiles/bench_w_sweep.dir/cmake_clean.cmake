file(REMOVE_RECURSE
  "CMakeFiles/bench_w_sweep.dir/bench_w_sweep.cc.o"
  "CMakeFiles/bench_w_sweep.dir/bench_w_sweep.cc.o.d"
  "bench_w_sweep"
  "bench_w_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_w_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
