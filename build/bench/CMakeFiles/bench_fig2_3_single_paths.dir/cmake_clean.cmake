file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_3_single_paths.dir/bench_fig2_3_single_paths.cc.o"
  "CMakeFiles/bench_fig2_3_single_paths.dir/bench_fig2_3_single_paths.cc.o.d"
  "bench_fig2_3_single_paths"
  "bench_fig2_3_single_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_3_single_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
