file(REMOVE_RECURSE
  "CMakeFiles/bench_nested_queries.dir/bench_nested_queries.cc.o"
  "CMakeFiles/bench_nested_queries.dir/bench_nested_queries.cc.o.d"
  "bench_nested_queries"
  "bench_nested_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nested_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
