# Empty compiler generated dependencies file for bench_nested_queries.
# This may be replaced when dependencies are built.
