# Empty dependencies file for bench_optimizer_cost.
# This may be replaced when dependencies are built.
