file(REMOVE_RECURSE
  "CMakeFiles/bench_optimizer_cost.dir/bench_optimizer_cost.cc.o"
  "CMakeFiles/bench_optimizer_cost.dir/bench_optimizer_cost.cc.o.d"
  "bench_optimizer_cost"
  "bench_optimizer_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimizer_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
