// repl: an interactive shell over the Session subsystem — the hand-drivable
// version of the server-shaped PREPARE/EXECUTE path.
//
//   repl [--buffer-pages N] [--cache-capacity N] [--script FILE]
//        [--connect host:port]
//
// With --connect the shell speaks the wire protocol to a serverd instead of
// embedding a Database: the same statement surface travels as QUERY /
// PREPARE / EXECUTE frames, \stats shows the server's observability
// counters (STATS opcode), and \parallel becomes SET parallel — capped by
// the server, like every other limit.
//
// Statements end with ';' and may span lines. The SQL surface is the
// engine's own (CREATE TABLE / CREATE INDEX / INSERT / UPDATE STATISTICS /
// SELECT, with `?` host-variable markers in SELECT). On top of that:
//
//   PREPARE <name> AS <select>;      compile once, through the plan cache
//   EXECUTE <name> [(v1, v2, ...)];  run with host variables bound
//   EXPLAIN <name>;                  show a prepared statement's plan
//   EXPLAIN <select>;                one-shot plan display
//   \stats                           session / plan-cache / buffer counters
//   \parallel N                      PARALLEL n knob for new plans
//   \list                           prepared statements
//   \help   \quit
#include <cctype>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "db/database.h"
#include "net/client.h"
#include "session/plan_cache.h"
#include "session/session.h"

namespace systemr {
namespace {

// Parses "(1, 2.5, 'abc', NULL)" — or the bare list without parens — into
// values for EXECUTE. Returns false (with *error set) on malformed input.
bool ParseParams(const std::string& text, std::vector<Value>* out,
                 std::string* error) {
  size_t i = 0;
  auto skip_ws = [&] {
    while (i < text.size() && std::isspace((unsigned char)text[i])) ++i;
  };
  skip_ws();
  bool parens = i < text.size() && text[i] == '(';
  if (parens) ++i;
  skip_ws();
  while (i < text.size() && text[i] != ')') {
    if (!out->empty()) {
      if (text[i] != ',') {
        *error = "expected ',' before: " + text.substr(i);
        return false;
      }
      ++i;
      skip_ws();
    }
    if (text[i] == '\'') {
      size_t end = text.find('\'', i + 1);
      if (end == std::string::npos) {
        *error = "unterminated string literal";
        return false;
      }
      out->push_back(Value::Str(text.substr(i + 1, end - i - 1)));
      i = end + 1;
    } else {
      size_t start = i;
      while (i < text.size() && text[i] != ',' && text[i] != ')' &&
             !std::isspace((unsigned char)text[i])) {
        ++i;
      }
      std::string tok = text.substr(start, i - start);
      if (tok.empty()) {
        *error = "empty parameter";
        return false;
      }
      std::string upper = tok;
      for (char& c : upper) c = (char)std::toupper((unsigned char)c);
      if (upper == "NULL") {
        out->push_back(Value::Null());
      } else if (tok.find('.') != std::string::npos ||
                 tok.find('e') != std::string::npos ||
                 tok.find('E') != std::string::npos) {
        out->push_back(Value::Real(std::strtod(tok.c_str(), nullptr)));
      } else {
        out->push_back(Value::Int(std::strtoll(tok.c_str(), nullptr, 10)));
      }
    }
    skip_ws();
  }
  return true;
}

// First whitespace-delimited word, upper-cased.
std::string FirstWord(const std::string& s, size_t* rest) {
  size_t i = 0;
  while (i < s.size() && std::isspace((unsigned char)s[i])) ++i;
  size_t start = i;
  while (i < s.size() && !std::isspace((unsigned char)s[i])) ++i;
  std::string word = s.substr(start, i - start);
  for (char& c : word) c = (char)std::toupper((unsigned char)c);
  while (i < s.size() && std::isspace((unsigned char)s[i])) ++i;
  if (rest != nullptr) *rest = i;
  return word;
}

class Repl {
 public:
  Repl(size_t buffer_pages, size_t cache_capacity)
      : db_(buffer_pages), cache_(cache_capacity), session_(&db_, &cache_) {}

  // Returns false when the shell should exit.
  bool HandleLine(const std::string& line) {
    if (!line.empty() && line[0] == '\\') {
      return HandleMeta(line);
    }
    buffer_ += line;
    buffer_ += '\n';
    size_t semi;
    while ((semi = buffer_.find(';')) != std::string::npos) {
      std::string stmt = buffer_.substr(0, semi);
      buffer_.erase(0, semi + 1);
      HandleStatement(stmt);
    }
    return true;
  }

  bool pending() const { return buffer_.find_first_not_of(" \t\n") !=
                                std::string::npos; }

 private:
  bool HandleMeta(const std::string& line) {
    std::string cmd = line.substr(0, line.find_first_of(" \t"));
    if (cmd == "\\q" || cmd == "\\quit") return false;
    if (cmd == "\\stats") {
      PrintStats();
    } else if (cmd == "\\list") {
      if (prepared_.empty()) std::printf("(no prepared statements)\n");
      for (const auto& [name, stmt] : prepared_) {
        std::printf("%-12s (%d param%s)  %s\n", name.c_str(),
                    stmt->num_params(), stmt->num_params() == 1 ? "" : "s",
                    stmt->sql().c_str());
      }
    } else if (cmd == "\\parallel") {
      size_t rest = 0;
      FirstWord(line, &rest);
      int dop = (int)std::strtol(line.c_str() + rest, nullptr, 10);
      session_.set_max_dop(dop);
      std::printf("max degree of parallelism = %d%s\n", session_.max_dop(),
                  session_.max_dop() > 1 ? "" : " (serial)");
    } else if (cmd == "\\help") {
      PrintHelp();
    } else {
      std::printf("unknown command %s (try \\help)\n", cmd.c_str());
    }
    return true;
  }

  void HandleStatement(const std::string& stmt) {
    size_t rest = 0;
    std::string verb = FirstWord(stmt, &rest);
    if (verb.empty()) return;
    if (verb == "PREPARE") {
      DoPrepare(stmt.substr(rest));
    } else if (verb == "EXECUTE") {
      DoExecute(stmt.substr(rest));
    } else if (verb == "EXPLAIN") {
      DoExplain(stmt.substr(rest));
    } else if (verb == "SELECT") {
      auto r = session_.ExecuteQuery(stmt);
      PrintResult(r);
    } else if (verb == "BEGIN" || verb == "COMMIT" || verb == "ROLLBACK") {
      Status s = session_.Execute(stmt);
      if (!s.ok()) {
        std::printf("error: %s\n", s.ToString().c_str());
      } else {
        std::printf("%s\n", verb == "BEGIN" ? "begin" : verb == "COMMIT"
                                ? "commit" : "rollback");
      }
    } else if (verb == "INSERT" || verb == "DELETE" ||
               (verb == "UPDATE" &&
                FirstWord(stmt.substr(rest), nullptr) != "STATISTICS")) {
      // DML joins the session's open transaction (auto-commits without one).
      auto n = session_.Mutate(stmt);
      if (!n.ok()) {
        std::printf("error: %s\n", n.status().ToString().c_str());
      } else {
        std::printf("%zu row%s\n", *n, *n == 1 ? "" : "s");
      }
    } else {
      // DDL / UPDATE STATISTICS go straight to the database.
      Status s = db_.Execute(stmt);
      if (!s.ok()) {
        std::printf("error: %s\n", s.ToString().c_str());
      } else {
        std::printf("ok\n");
      }
    }
  }

  void DoPrepare(const std::string& rest) {
    size_t after_name = 0;
    std::string tail = rest;
    std::string name = FirstWord(tail, &after_name);
    if (name.empty()) {
      std::printf("usage: PREPARE <name> AS <select>;\n");
      return;
    }
    std::string sql = tail.substr(after_name);
    size_t as_end = 0;
    if (FirstWord(sql, &as_end) == "AS") sql = sql.substr(as_end);
    auto stmt = session_.Prepare(sql);
    if (!stmt.ok()) {
      std::printf("error: %s\n", stmt.status().ToString().c_str());
      return;
    }
    int n = stmt->num_params();
    prepared_.insert_or_assign(
        name, std::make_unique<PreparedStatement>(std::move(*stmt)));
    std::printf("prepared %s (%d parameter%s)\n", name.c_str(), n,
                n == 1 ? "" : "s");
  }

  void DoExecute(const std::string& rest) {
    size_t after_name = 0;
    std::string name = FirstWord(rest, &after_name);
    auto it = prepared_.find(name);
    if (it == prepared_.end()) {
      std::printf("no prepared statement '%s' (see \\list)\n", name.c_str());
      return;
    }
    std::vector<Value> params;
    std::string error;
    if (!ParseParams(rest.substr(after_name), &params, &error)) {
      std::printf("bad parameter list: %s\n", error.c_str());
      return;
    }
    PrintResult(it->second->Execute(params));
  }

  void DoExplain(const std::string& rest) {
    std::string name = FirstWord(rest, nullptr);
    auto it = prepared_.find(name);
    if (it != prepared_.end()) {
      std::printf("%s", it->second->Explain().c_str());
      return;
    }
    auto stmt = session_.Prepare(rest);
    if (!stmt.ok()) {
      std::printf("error: %s\n", stmt.status().ToString().c_str());
      return;
    }
    std::printf("%s", stmt->Explain().c_str());
  }

  void PrintResult(const StatusOr<QueryResult>& r) {
    if (!r.ok()) {
      std::printf("error: %s\n", r.status().ToString().c_str());
      return;
    }
    std::printf("%s", r->ToString().c_str());
    const ExecStats& st = r->stats;
    std::printf(
        "(%zu row%s)  fetches=%llu gets=%llu rsi=%llu cost est=%.1f act=%.1f\n",
        r->rows.size(), r->rows.size() == 1 ? "" : "s",
        (unsigned long long)st.page_fetches, (unsigned long long)st.buffer_gets,
        (unsigned long long)st.rsi_calls, r->est_cost, r->actual_cost);
    // Accumulate per-statement batch counters for \stats.
    batch_totals_.batches += st.batches;
    batch_totals_.batch_rows_in += st.batch_rows_in;
    batch_totals_.batch_rows_out += st.batch_rows_out;
    batch_totals_.hash_build_rows += st.hash_build_rows;
    batch_totals_.hash_probe_rows += st.hash_probe_rows;
    batch_totals_.parallel_workers += st.parallel_workers;
    batch_totals_.parallel_morsels += st.parallel_morsels;
  }

  void PrintStats() {
    const SessionStats& s = session_.stats();
    std::printf("session:    executions=%llu optimizations=%llu "
                "cache_hits=%llu reprepares=%llu feedback_replans=%llu\n",
                (unsigned long long)s.executions,
                (unsigned long long)s.optimizations,
                (unsigned long long)s.cache_hits,
                (unsigned long long)s.reprepares,
                (unsigned long long)s.feedback_replans);
    const SelectivityFeedback& fb = db_.feedback();
    std::printf("feedback:   signatures=%zu observations=%llu\n", fb.size(),
                (unsigned long long)fb.records());
    PlanCacheStats c = cache_.stats();
    std::printf("plan cache: entries=%zu/%zu hits=%llu misses=%llu "
                "evictions=%llu invalidations=%llu\n",
                cache_.size(), cache_.capacity(), (unsigned long long)c.hits,
                (unsigned long long)c.misses, (unsigned long long)c.evictions,
                (unsigned long long)c.invalidations);
    BufferStats b = db_.rss().pool().stats();
    std::printf("buffer:     gets=%llu fetches=%llu writes=%llu resident=%zu "
                "catalog_version=%llu\n",
                (unsigned long long)b.logical_gets,
                (unsigned long long)b.fetches, (unsigned long long)b.writes,
                db_.rss().pool().resident(),
                (unsigned long long)db_.catalog().version());
    std::printf("batch:      batches=%llu rows_in=%llu rows_out=%llu "
                "sel_density=%.3f hash_build=%llu hash_probe=%llu\n",
                (unsigned long long)batch_totals_.batches,
                (unsigned long long)batch_totals_.batch_rows_in,
                (unsigned long long)batch_totals_.batch_rows_out,
                batch_totals_.AvgSelectionDensity(),
                (unsigned long long)batch_totals_.hash_build_rows,
                (unsigned long long)batch_totals_.hash_probe_rows);
    std::printf("parallel:   max_dop=%d workers=%llu morsels=%llu\n",
                session_.max_dop(),
                (unsigned long long)batch_totals_.parallel_workers,
                (unsigned long long)batch_totals_.parallel_morsels);
  }

  void PrintHelp() {
    std::printf(
        "statements end with ';' and may span lines:\n"
        "  PREPARE <name> AS <select>;      compile once (host vars: ?)\n"
        "  EXECUTE <name> [(v1, ...)];      run with parameters bound\n"
        "  EXPLAIN <name>; / EXPLAIN <select>;\n"
        "  SELECT ...;                      one-shot query via the session\n"
        "  BEGIN; ... COMMIT; / ROLLBACK;   transaction control\n"
        "  CREATE TABLE/INDEX, INSERT, UPDATE, DELETE, UPDATE STATISTICS;\n"
        "meta:\n"
        "  \\stats       session, plan-cache, buffer, and parallel counters\n"
        "  \\parallel N  max degree of parallelism for new plans (1=serial)\n"
        "  \\list        prepared statements\n"
        "  \\quit\n");
  }

  Database db_;
  PlanCache cache_;
  Session session_;
  ExecStats batch_totals_;  // Running batch/hash counters across statements.
  std::string buffer_;
  std::map<std::string, std::unique_ptr<PreparedStatement>> prepared_;
};

// The remote shell: same line/statement surface as Repl, but every
// statement travels to a serverd as a wire-protocol frame.
class RemoteRepl {
 public:
  // Returns non-OK if the connection (incl. HELLO handshake) fails.
  Status Connect(const std::string& spec) {
    std::string host;
    uint16_t port = 0;
    Status s = net::ParseHostPort(spec, &host, &port);
    if (!s.ok()) return s;
    RETURN_IF_ERROR(client_.Connect(host, port));
    std::printf("connected to %s:%u (protocol v%u)\n", host.c_str(),
                (unsigned)port, (unsigned)net::kProtocolVersion);
    return Status::OK();
  }

  bool HandleLine(const std::string& line) {
    if (!client_.connected()) {
      std::printf("connection lost\n");
      return false;
    }
    if (!line.empty() && line[0] == '\\') {
      return HandleMeta(line);
    }
    buffer_ += line;
    buffer_ += '\n';
    size_t semi;
    while ((semi = buffer_.find(';')) != std::string::npos) {
      std::string stmt = buffer_.substr(0, semi);
      buffer_.erase(0, semi + 1);
      HandleStatement(stmt);
    }
    return true;
  }

  bool pending() const {
    return buffer_.find_first_not_of(" \t\n") != std::string::npos;
  }

 private:
  bool HandleMeta(const std::string& line) {
    std::string cmd = line.substr(0, line.find_first_of(" \t"));
    if (cmd == "\\q" || cmd == "\\quit") {
      client_.Close();
      return false;
    }
    if (cmd == "\\stats") {
      PrintServerStats();
    } else if (cmd == "\\parallel") {
      size_t rest = 0;
      FirstWord(line, &rest);
      int64_t dop = std::strtol(line.c_str() + rest, nullptr, 10);
      PrintWire(client_.Set("parallel", dop), "parallel set");
    } else if (cmd == "\\help") {
      std::printf(
          "remote mode — statements travel to the server; meta:\n"
          "  \\stats       server observability counters (STATS opcode)\n"
          "  \\parallel N  SET parallel (capped by the server's --max-dop)\n"
          "  \\set K V     SET any limit: max_rows, max_buffer_gets,\n"
          "               deadline_ms (tightens the server default)\n"
          "  \\quit\n");
    } else if (cmd == "\\set") {
      size_t rest = 0;
      FirstWord(line, &rest);
      std::string tail = line.substr(rest);
      size_t after_key = 0;
      std::string key = FirstWord(tail, &after_key);
      for (char& c : key) c = (char)std::tolower((unsigned char)c);
      int64_t value = std::strtoll(tail.c_str() + after_key, nullptr, 10);
      PrintWire(client_.Set(key, value), "set " + key);
    } else {
      std::printf("unknown command %s (try \\help)\n", cmd.c_str());
    }
    return true;
  }

  void HandleStatement(const std::string& stmt) {
    size_t rest = 0;
    std::string verb = FirstWord(stmt, &rest);
    if (verb.empty()) return;
    if (verb == "PREPARE") {
      std::string tail = stmt.substr(rest);
      size_t after_name = 0;
      std::string name = FirstWord(tail, &after_name);
      if (name.empty()) {
        std::printf("usage: PREPARE <name> AS <select>;\n");
        return;
      }
      std::string sql = tail.substr(after_name);
      size_t as_end = 0;
      if (FirstWord(sql, &as_end) == "AS") sql = sql.substr(as_end);
      PrintWire(client_.Prepare(name, sql), "prepared " + name);
    } else if (verb == "EXECUTE") {
      std::string tail = stmt.substr(rest);
      size_t after_name = 0;
      std::string name = FirstWord(tail, &after_name);
      std::vector<Value> params;
      std::string error;
      if (!ParseParams(tail.substr(after_name), &params, &error)) {
        std::printf("bad parameter list: %s\n", error.c_str());
        return;
      }
      PrintWire(client_.Execute(name, params), "ok");
    } else if (verb == "BEGIN") {
      PrintWire(client_.Begin(), "begin");
    } else if (verb == "COMMIT") {
      PrintWire(client_.Commit(), "commit");
    } else if (verb == "ROLLBACK") {
      PrintWire(client_.Rollback(), "rollback");
    } else {
      // Everything else — SELECT, EXPLAIN, DML, DDL — is one QUERY frame;
      // the server routes it by statement kind.
      PrintWire(client_.Query(stmt), "ok");
    }
  }

  void PrintWire(const StatusOr<net::WireResult>& r,
                 const std::string& ok_text) {
    if (!r.ok()) {  // The connection itself failed.
      std::printf("connection error: %s\n", r.status().ToString().c_str());
      return;
    }
    if (!r->ok()) {
      std::printf("error: %s\n", r->ToStatus().ToString().c_str());
      return;
    }
    switch (r->payload) {
      case net::WireResult::Payload::kRows: {
        // Reuse the engine's table printer by rebuilding a QueryResult.
        QueryResult q;
        q.columns = r->columns;
        q.rows = r->rows;
        q.plan_text = r->plan_text;
        std::printf("%s", q.ToString().c_str());
        if (r->plan_text.empty()) {
          std::printf("fetches=%llu gets=%llu rsi=%llu cost est=%.1f "
                      "act=%.1f\n",
                      (unsigned long long)r->page_fetches,
                      (unsigned long long)r->buffer_gets,
                      (unsigned long long)r->rsi_calls, r->est_cost,
                      r->actual_cost);
        }
        break;
      }
      case net::WireResult::Payload::kAffected:
        std::printf("%llu row%s\n", (unsigned long long)r->affected,
                    r->affected == 1 ? "" : "s");
        break;
      default:
        std::printf("%s\n", ok_text.c_str());
        break;
    }
  }

  void PrintServerStats() {
    StatusOr<net::ServerStatsSnapshot> s = client_.Stats();
    if (!s.ok()) {
      std::printf("error: %s\n", s.status().ToString().c_str());
      return;
    }
    std::printf("connections: accepted=%llu active=%llu shed=%llu "
                "disconnect_rollbacks=%llu\n",
                (unsigned long long)s->connections_accepted,
                (unsigned long long)s->connections_active,
                (unsigned long long)s->connections_shed,
                (unsigned long long)s->disconnect_rollbacks);
    std::printf("statements:  admitted=%llu active=%llu queued=%llu "
                "queued_total=%llu shed=%llu\n",
                (unsigned long long)s->stmts_admitted,
                (unsigned long long)s->stmts_active,
                (unsigned long long)s->stmts_queued,
                (unsigned long long)s->stmts_queued_total,
                (unsigned long long)s->stmts_shed);
    std::printf("             completed=%llu failed=%llu peak_active=%llu "
                "peak_queued=%llu\n",
                (unsigned long long)s->stmts_completed,
                (unsigned long long)s->stmts_failed,
                (unsigned long long)s->peak_active,
                (unsigned long long)s->peak_queued);
    std::printf("wire:        bytes_in=%llu bytes_out=%llu\n",
                (unsigned long long)s->bytes_in,
                (unsigned long long)s->bytes_out);
    std::printf("wal:         syncs=%llu requests=%llu piggybacked=%llu\n",
                (unsigned long long)s->wal_syncs,
                (unsigned long long)(s->wal_syncs + s->wal_piggybacked),
                (unsigned long long)s->wal_piggybacked);
  }

  net::Client client_;
  std::string buffer_;
};

int Main(int argc, char** argv) {
  size_t buffer_pages = 256;
  size_t cache_capacity = 64;
  const char* script = nullptr;
  const char* connect = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--buffer-pages") == 0 && i + 1 < argc) {
      buffer_pages = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--cache-capacity") == 0 && i + 1 < argc) {
      cache_capacity = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--script") == 0 && i + 1 < argc) {
      script = argv[++i];
    } else if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      connect = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: repl [--buffer-pages N] [--cache-capacity N] "
                   "[--script FILE] [--connect host:port]\n");
      return 2;
    }
  }

  std::unique_ptr<Repl> local;
  std::unique_ptr<RemoteRepl> remote;
  if (connect != nullptr) {
    remote = std::make_unique<RemoteRepl>();
    Status s = remote->Connect(connect);
    if (!s.ok()) {
      std::fprintf(stderr, "connect failed: %s\n", s.ToString().c_str());
      return 1;
    }
  } else {
    local = std::make_unique<Repl>(buffer_pages, cache_capacity);
  }
  auto handle = [&](const std::string& line) {
    return remote ? remote->HandleLine(line) : local->HandleLine(line);
  };
  auto pending = [&] { return remote ? remote->pending() : local->pending(); };

  std::FILE* in = stdin;
  if (script != nullptr) {
    in = std::fopen(script, "r");
    if (in == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", script);
      return 2;
    }
  } else {
    std::printf("systemr repl — \\help for commands, \\quit to exit\n");
  }

  char line[4096];
  if (script == nullptr) std::printf("systemr> ");
  std::fflush(stdout);
  while (std::fgets(line, sizeof line, in) != nullptr) {
    size_t len = std::strlen(line);
    while (len > 0 && (line[len - 1] == '\n' || line[len - 1] == '\r')) {
      line[--len] = '\0';
    }
    if (!handle(line)) break;
    if (script == nullptr) {
      std::printf(pending() ? "    ...> " : "systemr> ");
      std::fflush(stdout);
    }
  }
  if (script != nullptr) std::fclose(in);
  return 0;
}

}  // namespace
}  // namespace systemr

int main(int argc, char** argv) { return systemr::Main(argc, argv); }
