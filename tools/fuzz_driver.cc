// fuzz_driver: differential + metamorphic fuzzing of the optimizer and
// executor against the trusted reference executor.
//
//   fuzz_driver [--seeds N] [--queries M] [--start S] [--out PATH]
//               [--no-baselines] [--no-metamorphic] [--threads T]
//               [--dop N] [--join-method nlj|merge|hash|auto]
//
// `--join-method` forces one join algorithm wherever predicates allow it
// (equi joins for merge/hash; nested loop always applies), for targeted
// differential coverage of a single operator.
//
// `--dop N` (N > 1) forces morsel-driven parallel plans on the engine —
// past the cost model, so even tiny fuzz tables run under an exchange —
// while the reference executor and baselines stay serial.
//
// Every iteration is fully determined by its seed: to reproduce a reported
// failure run `fuzz_driver --seeds 1 --start <seed>`.
//
// With `--threads T` (T > 1) each seed builds one shared Database and T
// concurrent sessions fuzz it in parallel, each checked against its own
// reference executor; per-thread query streams are still deterministic, so
// a violating (seed, thread) pair replays with the same flags.
//
// `--dml N` interleaves one random INSERT/UPDATE/DELETE before every Nth
// query; the statement must behave identically on the engine and the
// index-less twin, and all later query oracles run on the mutated data.
//
// `--wire N` switches to wire-protocol robustness fuzzing (see
// harness/wire_fuzz.h): N seeds of malformed-frame attacks against a live
// in-process server — oversized/zero/truncated lengths, unknown opcodes,
// garbage bodies, mid-frame disconnects — checking that every attack earns
// a clean protocol error (never a crash or hang) and the server still
// answers a well-formed probe afterward.
//
// `--crash` switches to crash-recovery fuzzing (see harness/crash_fuzz.h):
// each seed runs a transactional DML workload, kills the engine at a seeded
// random WAL offset (every third seed with a torn garbage tail), recovers a
// fresh engine from the surviving bytes, and checks that exactly the
// committed prefix of the workload survived — then that the recovered
// database still answers queries and accepts DML.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/crash_fuzz.h"
#include "harness/fuzz_session.h"
#include "harness/wire_fuzz.h"

int main(int argc, char** argv) {
  uint64_t seeds = 100;
  uint64_t start = 1;
  int threads = 1;
  bool crash_mode = false;
  bool wire_mode = false;
  std::string out_path = "fuzz_report.json";
  systemr::FuzzOptions options;
  systemr::CrashFuzzOptions crash_options;

  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--seeds") == 0) {
      seeds = std::strtoull(need_value("--seeds"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--queries") == 0) {
      options.queries_per_seed =
          static_cast<int>(std::strtol(need_value("--queries"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--start") == 0) {
      start = std::strtoull(need_value("--start"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = need_value("--out");
    } else if (std::strcmp(argv[i], "--no-baselines") == 0) {
      options.check_baselines = false;
    } else if (std::strcmp(argv[i], "--no-metamorphic") == 0) {
      options.metamorphic = false;
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      options.inject_faults = true;
    } else if (std::strcmp(argv[i], "--crash") == 0) {
      crash_mode = true;
    } else if (std::strcmp(argv[i], "--wire") == 0) {
      wire_mode = true;
      seeds = std::strtoull(need_value("--wire"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--units") == 0) {
      crash_options.units =
          static_cast<int>(std::strtol(need_value("--units"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--dml") == 0) {
      options.dml_every =
          static_cast<int>(std::strtol(need_value("--dml"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--table1") == 0) {
      // Paper-faithful estimator: no histograms, no feedback. Used to record
      // the calibration baseline in EXPERIMENTS.md.
      options.use_column_stats = false;
      options.use_feedback = false;
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      threads = static_cast<int>(std::strtol(need_value("--threads"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--dop") == 0) {
      // Forced morsel parallelism: every eligible engine plan runs under an
      // exchange with up to N workers; the reference and baselines stay
      // serial, so interleaving bugs surface as multiset mismatches.
      options.max_dop =
          static_cast<int>(std::strtol(need_value("--dop"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--join-method") == 0) {
      const char* m = need_value("--join-method");
      if (std::strcmp(m, "nlj") == 0) {
        options.force = systemr::JoinMethodForce::kNestedLoop;
      } else if (std::strcmp(m, "merge") == 0) {
        options.force = systemr::JoinMethodForce::kMerge;
      } else if (std::strcmp(m, "hash") == 0) {
        options.force = systemr::JoinMethodForce::kHash;
      } else if (std::strcmp(m, "auto") == 0) {
        options.force = systemr::JoinMethodForce::kAuto;
      } else {
        std::fprintf(stderr, "bad --join-method %s (nlj|merge|hash|auto)\n", m);
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: fuzz_driver [--seeds N] [--queries M] [--start S] "
                   "[--out PATH] [--no-baselines] [--no-metamorphic] "
                   "[--faults] [--crash] [--wire N] [--units N] [--dml N] "
                   "[--table1] [--threads T] [--dop N] "
                   "[--join-method nlj|merge|hash|auto]\n");
      return 2;
    }
  }

  if (wire_mode) {
    // Wire-protocol robustness mode: one live server, seeded frame attacks.
    systemr::WireFuzzResult result = systemr::RunWireFuzz(start, seeds);
    for (const std::string& v : result.violations) {
      std::fprintf(stderr, "VIOLATION %s\n", v.c_str());
    }
    std::printf(
        "fuzz_driver --wire: %llu seeds, %llu attacks, %zu violations\n",
        static_cast<unsigned long long>(result.seeds),
        static_cast<unsigned long long>(result.attacks),
        result.violations.size());
    return result.violations.empty() ? 0 : 1;
  }

  if (crash_mode) {
    // Crash-recovery mode: atomicity/durability oracle, no report file.
    uint64_t failed_seeds = 0, stmts = 0, violations = 0;
    for (uint64_t seed = start; seed < start + seeds; ++seed) {
      systemr::SeedResult result =
          systemr::RunCrashFuzzSeed(seed, crash_options);
      stmts += result.queries;
      violations += result.violations.size();
      if (!result.violations.empty()) {
        ++failed_seeds;
        for (const std::string& v : result.violations) {
          std::fprintf(stderr, "VIOLATION %s\n", v.c_str());
        }
      }
      if ((seed - start + 1) % 50 == 0) {
        std::printf("... %llu/%llu seeds, %llu violations\n",
                    static_cast<unsigned long long>(seed - start + 1),
                    static_cast<unsigned long long>(seeds),
                    static_cast<unsigned long long>(violations));
        std::fflush(stdout);
      }
    }
    std::printf(
        "fuzz_driver --crash: %llu seeds, %llu DML statements, %llu "
        "violations (%llu bad seeds)\n",
        static_cast<unsigned long long>(seeds),
        static_cast<unsigned long long>(stmts),
        static_cast<unsigned long long>(violations),
        static_cast<unsigned long long>(failed_seeds));
    return violations == 0 ? 0 : 1;
  }

  if (threads > 1) {
    // Concurrent mode: differential oracle only, no calibration report.
    uint64_t failed_seeds = 0, queries = 0, violations = 0;
    for (uint64_t seed = start; seed < start + seeds; ++seed) {
      systemr::SeedResult result = systemr::RunConcurrentFuzzSeed(
          seed, threads, options.queries_per_seed, options.force,
          options.max_dop);
      queries += result.queries;
      violations += result.violations.size();
      if (!result.violations.empty()) {
        ++failed_seeds;
        for (const std::string& v : result.violations) {
          std::fprintf(stderr, "VIOLATION %s\n", v.c_str());
        }
      }
      if ((seed - start + 1) % 50 == 0) {
        std::printf("... %llu/%llu seeds, %llu violations\n",
                    static_cast<unsigned long long>(seed - start + 1),
                    static_cast<unsigned long long>(seeds),
                    static_cast<unsigned long long>(violations));
        std::fflush(stdout);
      }
    }
    std::printf(
        "fuzz_driver: %llu seeds x %d threads, %llu queries, %llu violations "
        "(%llu bad seeds)\n",
        static_cast<unsigned long long>(seeds), threads,
        static_cast<unsigned long long>(queries),
        static_cast<unsigned long long>(violations),
        static_cast<unsigned long long>(failed_seeds));
    return violations == 0 ? 0 : 1;
  }

  systemr::FuzzReport report;
  uint64_t failed_seeds = 0;
  for (uint64_t seed = start; seed < start + seeds; ++seed) {
    systemr::SeedResult result = systemr::RunFuzzSeed(seed, options, &report);
    if (!result.violations.empty()) {
      ++failed_seeds;
      for (const std::string& v : result.violations) {
        std::fprintf(stderr, "VIOLATION %s\n", v.c_str());
      }
    }
    if ((seed - start + 1) % 50 == 0) {
      std::printf("... %llu/%llu seeds, %zu violations\n",
                  static_cast<unsigned long long>(seed - start + 1),
                  static_cast<unsigned long long>(seeds),
                  report.violations.size());
      std::fflush(stdout);
    }
  }

  systemr::Status st = systemr::WriteFuzzReport(report, out_path);
  if (!st.ok()) {
    std::fprintf(stderr, "report write failed: %s\n", st.message().c_str());
    return 2;
  }
  if (options.inject_faults) {
    std::printf(
        "faults: %llu queries under injection, %llu clean results, %llu "
        "clean errors (%llu budget aborts), %llu faults injected\n",
        static_cast<unsigned long long>(report.fault_queries),
        static_cast<unsigned long long>(report.fault_clean_results),
        static_cast<unsigned long long>(report.fault_clean_errors),
        static_cast<unsigned long long>(report.fault_budget_aborts),
        static_cast<unsigned long long>(report.faults_injected));
  }
  std::printf(
      "fuzz_driver: %llu seeds, %llu queries, %zu violations (%llu bad "
      "seeds); report: %s\n",
      static_cast<unsigned long long>(report.seeds),
      static_cast<unsigned long long>(report.queries),
      report.violations.size(),
      static_cast<unsigned long long>(failed_seeds), out_path.c_str());
  return report.violations.empty() ? 0 : 1;
}
