// serverd: the network serving daemon. One process = one Database, served
// over the wire protocol (DESIGN.md §10) with admission control and
// overload shedding. Point `repl --connect host:port` at it.
//
//   serverd [--host H] [--port P] [--port-file PATH]
//           [--buffer-pages N] [--cache-capacity N] [--init FILE]
//           [--max-connections N] [--max-concurrent N] [--max-queue N]
//           [--max-buffer-gets N] [--max-rows N] [--deadline-ms N]
//           [--max-dop N] [--sync-delay-us N] [--fetch-latency-us N]
//
// --port 0 (the default) binds an ephemeral port; --port-file writes the
// bound port for scripts that need to find the server. --init runs a SQL
// script against the database before serving. SIGINT/SIGTERM trigger a
// graceful shutdown: drain in-flight statements, roll back abandoned
// transactions, refuse new work.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "db/database.h"
#include "net/server.h"
#include "session/plan_cache.h"

namespace systemr {
namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void OnSignal(int) { g_shutdown = 1; }

int Main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  net::ServerOptions opts;
  size_t buffer_pages = 256;
  size_t cache_capacity = 64;
  const char* init_script = nullptr;
  const char* port_file = nullptr;
  uint32_t sync_delay_us = 0;
  uint32_t fetch_latency_us = 0;

  auto next_arg = [&](int* i) -> const char* {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "%s needs a value\n", argv[*i]);
      std::exit(2);
    }
    return argv[++*i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--host") == 0) {
      opts.host = next_arg(&i);
    } else if (std::strcmp(a, "--port") == 0) {
      opts.port = (uint16_t)std::strtoul(next_arg(&i), nullptr, 10);
    } else if (std::strcmp(a, "--port-file") == 0) {
      port_file = next_arg(&i);
    } else if (std::strcmp(a, "--buffer-pages") == 0) {
      buffer_pages = std::strtoul(next_arg(&i), nullptr, 10);
    } else if (std::strcmp(a, "--cache-capacity") == 0) {
      cache_capacity = std::strtoul(next_arg(&i), nullptr, 10);
    } else if (std::strcmp(a, "--init") == 0) {
      init_script = next_arg(&i);
    } else if (std::strcmp(a, "--max-connections") == 0) {
      opts.max_connections = std::strtoul(next_arg(&i), nullptr, 10);
    } else if (std::strcmp(a, "--max-concurrent") == 0) {
      opts.max_concurrent = std::strtoul(next_arg(&i), nullptr, 10);
    } else if (std::strcmp(a, "--max-queue") == 0) {
      opts.max_queue = std::strtoul(next_arg(&i), nullptr, 10);
    } else if (std::strcmp(a, "--max-buffer-gets") == 0) {
      opts.default_max_buffer_gets = std::strtoull(next_arg(&i), nullptr, 10);
    } else if (std::strcmp(a, "--max-rows") == 0) {
      opts.default_max_rows = std::strtoull(next_arg(&i), nullptr, 10);
    } else if (std::strcmp(a, "--deadline-ms") == 0) {
      opts.default_deadline_ms =
          (uint32_t)std::strtoul(next_arg(&i), nullptr, 10);
    } else if (std::strcmp(a, "--max-dop") == 0) {
      opts.max_dop_cap = (int)std::strtol(next_arg(&i), nullptr, 10);
    } else if (std::strcmp(a, "--sync-delay-us") == 0) {
      sync_delay_us = (uint32_t)std::strtoul(next_arg(&i), nullptr, 10);
    } else if (std::strcmp(a, "--fetch-latency-us") == 0) {
      fetch_latency_us = (uint32_t)std::strtoul(next_arg(&i), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", a);
      return 2;
    }
  }

  Database db(buffer_pages);
  PlanCache cache(cache_capacity);
  db.rss().wal().set_sync_delay_us(sync_delay_us);
  db.rss().pool().set_sim_fetch_latency_us(fetch_latency_us);

  if (init_script != nullptr) {
    std::ifstream in(init_script);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", init_script);
      return 2;
    }
    std::ostringstream sql;
    sql << in.rdbuf();
    Status s = db.ExecuteScript(sql.str());
    if (!s.ok()) {
      std::fprintf(stderr, "init script failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("init: ran %s\n", init_script);
  }

  net::Server server(&db, &cache, opts);
  Status s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  if (port_file != nullptr) {
    std::ofstream pf(port_file);
    pf << server.port() << "\n";
  }
  std::printf("serverd listening on %s:%u (max_concurrent=%zu max_queue=%zu "
              "max_connections=%zu)\n",
              opts.host.c_str(), (unsigned)server.port(), opts.max_concurrent,
              opts.max_queue, opts.max_connections);
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (g_shutdown == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::printf("shutting down (draining in-flight statements)...\n");
  server.Stop();
  net::ServerStatsSnapshot st = server.stats();
  std::printf("served %llu connections, %llu statements "
              "(%llu failed, %llu shed), rolled back %llu abandoned txns\n",
              (unsigned long long)st.connections_accepted,
              (unsigned long long)st.stmts_completed,
              (unsigned long long)st.stmts_failed,
              (unsigned long long)st.stmts_shed,
              (unsigned long long)st.disconnect_rollbacks);
  return 0;
}

}  // namespace
}  // namespace systemr

int main(int argc, char** argv) { return systemr::Main(argc, argv); }
