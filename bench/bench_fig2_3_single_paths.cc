// E4 — Figures 2 & 3 reproduction: the single-relation level of the search
// tree for the example join. For each relation: every access path with its
// eligible (local) predicates applied, its cost, its output order, and
// whether pruning kept or discarded it.
#include <cstdio>

#include "bench_common.h"
#include "optimizer/access_path_gen.h"
#include "workload/datagen.h"

namespace systemr {
namespace bench {
namespace {

constexpr const char* kFig1Sql =
    "SELECT NAME, TITLE, SAL, DNAME "
    "FROM EMP, DEPT, JOB "
    "WHERE TITLE = 'CLERK' AND LOC = 'DENVER' "
    "AND EMP.DNO = DEPT.DNO AND EMP.JOB = JOB.JOB";

int Main() {
  Database db(256);
  DataGen gen(&db, 1979);
  Die(gen.LoadPaperExample(20000, 100, 50));

  auto h = Harness::Make(&db, kFig1Sql);

  Header("Figure 2 — access paths for single relations "
         "(local predicates only)");
  const auto& interesting = h->enumerator->interesting_orders();
  std::printf("Interesting orderings (order-equivalence classes):\n");
  for (const OrderSpec& spec : interesting) {
    std::printf("  %s", OrderSpecToString(spec).c_str());
    if (spec.size() == 1) {
      auto [t, c] = h->classes.Representative(spec[0].cls);
      std::printf("  (e.g. %s)", h->block->ColumnName(t, c).c_str());
    }
    std::printf("\n");
  }

  for (size_t t = 0; t < h->block->tables.size(); ++t) {
    std::printf("\n%s:\n", h->block->tables[t].table->name.c_str());
    auto paths = GenerateAccessPaths(h->ctx, static_cast<int>(t), 0);
    PruneAccessPaths(&paths, interesting);
    for (const AccessPath& p : paths) {
      std::printf("  C(%-28s) = %8.1f  order=%-10s rows=%8.1f  %s\n",
                  p.describe.c_str(), p.cost.cost,
                  OrderSpecToString(p.order).c_str(), p.rows,
                  p.pruned ? "X pruned" : "kept");
    }
  }

  Header("Figure 3 — search tree entries for single relations (as stored)");
  for (size_t t = 0; t < h->block->tables.size(); ++t) {
    uint32_t mask = 1u << t;
    std::printf("{%s}:\n", h->block->tables[t].table->name.c_str());
    for (const JoinSolution& s : h->enumerator->SolutionsFor(mask)) {
      std::printf("  C(%-28s) = %8.1f  order=%-10s N=%0.1f\n",
                  s.describe.c_str(), s.cost,
                  OrderSpecToString(s.order).c_str(), s.rows);
    }
  }
  std::printf(
      "\nAs in the paper, only the cheapest path per interesting order plus\n"
      "the cheapest unordered path survive into the search tree.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace systemr

int main() { return systemr::bench::Main(); }
