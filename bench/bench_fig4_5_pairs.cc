// E5 — Figures 4 & 5 reproduction: the two-relation level of the search
// tree — nested-loop extensions (Fig. 4) and merging-scan extensions with
// and without sorts (Fig. 5) — for the example join.
#include <cstdio>

#include "bench_common.h"
#include "workload/datagen.h"

namespace systemr {
namespace bench {
namespace {

constexpr const char* kFig1Sql =
    "SELECT NAME, TITLE, SAL, DNAME "
    "FROM EMP, DEPT, JOB "
    "WHERE TITLE = 'CLERK' AND LOC = 'DENVER' "
    "AND EMP.DNO = DEPT.DNO AND EMP.JOB = JOB.JOB";

int Main() {
  Database db(256);
  DataGen gen(&db, 1979);
  Die(gen.LoadPaperExample(20000, 100, 50));

  auto h = Harness::Make(&db, kFig1Sql);
  const BoundQueryBlock& block = *h->block;

  auto mask_name = [&](uint32_t mask) {
    std::string s = "(";
    bool first = true;
    for (size_t t = 0; t < block.tables.size(); ++t) {
      if ((mask >> t) & 1) {
        if (!first) s += ", ";
        s += block.tables[t].table->name;
        first = false;
      }
    }
    return s + ")";
  };

  Header("Figures 4 & 5 — solutions for pairs of relations");
  std::printf(
      "Stored solutions per pair; 'NLJ' entries reproduce Fig. 4 (nested\n"
      "loops), 'MJ' entries reproduce Fig. 5 (merging scans, with 'sort'\n"
      "marking the sorted-temporary-list variants). Dominated alternatives\n"
      "were pruned as they were generated, exactly as the paper describes\n"
      "('as each of the costs are computed they are compared with the\n"
      "cheapest equivalent solution found so far').\n");
  for (uint32_t mask = 1; mask < (1u << block.tables.size()); ++mask) {
    if (__builtin_popcount(mask) != 2) continue;
    const auto& sols = h->enumerator->SolutionsFor(mask);
    std::printf("\n%s%s:\n", mask_name(mask).c_str(),
                sols.empty() ? "  [not expanded: join-order heuristic]" : "");
    for (const JoinSolution& s : sols) {
      std::printf("  C = %10.1f  order=%-10s N=%-10.1f %s\n", s.cost,
                  OrderSpecToString(s.order).c_str(), s.rows,
                  s.describe.c_str());
    }
  }
  std::printf("\nsolutions generated at all levels: %zu, stored: %zu\n",
              h->enumerator->solutions_generated(),
              h->enumerator->solutions_stored());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace systemr

int main() { return systemr::bench::Main(); }
