// BENCH 10 — the serving front end under closed-loop multi-client load.
//
//   bench_serving [--out PATH] [--measure-ms N] [--warmup-ms N]
//
// N closed-loop clients connect over real loopback sockets and drive a mixed
// read/DML workload (90% reads on per-client partition tables, 10%
// auto-commit UPDATEs), sweeping the client count past the server's
// admission limit. Two server configurations face the same sweep:
//
//   admitted   max_concurrent=8, max_queue=8 — the queue is bounded, and a
//              full queue sheds immediately with kResourceExhausted (the
//              client backs off briefly and retries);
//   unlimited  caps set far above the sweep — every request executes at
//              once, nothing queues, nothing is shed.
//
// The claims measured, on the paper's terms (§"heavy traffic"): QPS rises
// with clients until the admission limit absorbs the offered load, and past
// saturation — at 4x overload — the admitted server's p50/p95/p99 stay
// bounded because excess work is rejected at the door, while the unlimited
// server's tail grows with every client admitted (each in-flight statement
// dilutes the CPU among more peers; latency tracks the multiprogramming
// level). The shed count makes the mechanism visible: zero below the limit,
// nonzero past it.
//
// The storage regime is the io one (simulated device latency, pool smaller
// than the working set) so that concurrency genuinely overlaps device waits
// even on a single hardware thread; the reads carry a short range scan so
// each request also has a real CPU slice to contend over.
//
// Writes BENCH_10.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "db/database.h"
#include "net/client.h"
#include "net/server.h"
#include "session/plan_cache.h"

namespace systemr {
namespace bench {
namespace {

constexpr int kPartitions = 8;
constexpr int64_t kRowsPerPartition = 2000;
constexpr size_t kPoolPages = 48;        // Below the working set: misses pay.
constexpr uint32_t kFetchLatencyUs = 300;
constexpr uint32_t kSyncDelayUs = 500;   // Commits cost a (batchable) fsync.
constexpr size_t kAdmitConcurrent = 8;
constexpr size_t kAdmitQueue = 8;

struct ClientTally {
  std::vector<uint64_t> latencies_us;  // Completed requests only.
  uint64_t completed = 0;
  uint64_t shed = 0;      // Admission rejections (backed off + retried).
  uint64_t errors = 0;    // Other clean engine errors (e.g. lock timeouts).
};

struct SweepPoint {
  int clients = 0;
  double wall_ms = 0;
  uint64_t completed = 0;
  uint64_t shed = 0;
  uint64_t errors = 0;
  double qps = 0;
  uint64_t p50_us = 0, p95_us = 0, p99_us = 0;
  uint64_t server_shed = 0;        // From STATS: server-side count.
  uint64_t server_peak_active = 0;
  uint64_t wal_piggybacked = 0;
};

uint64_t Percentile(std::vector<uint64_t>* v, double p) {
  if (v->empty()) return 0;
  size_t idx = static_cast<size_t>(p * (v->size() - 1));
  std::nth_element(v->begin(), v->begin() + idx, v->end());
  return (*v)[idx];
}

std::unique_ptr<Database> BuildDatabase() {
  auto db = std::make_unique<Database>(kPoolPages);
  for (int p = 0; p < kPartitions; ++p) {
    const std::string table = "P" + std::to_string(p);
    Status s = db->Execute("CREATE TABLE " + table + " (PK INT, V INT)");
    if (!s.ok()) std::abort();
    for (int64_t base = 0; base < kRowsPerPartition; base += 500) {
      std::string sql = "INSERT INTO " + table + " VALUES ";
      for (int64_t i = base; i < base + 500 && i < kRowsPerPartition; ++i) {
        if (i != base) sql += ", ";
        sql += "(" + std::to_string(i) + ", " + std::to_string(i % 101) + ")";
      }
      if (!db->Execute(sql).ok()) std::abort();
    }
    if (!db->Execute("CREATE UNIQUE INDEX " + table + "_PK ON " + table +
                     " (PK)").ok() ||
        !db->Execute("UPDATE STATISTICS " + table).ok()) {
      std::abort();
    }
  }
  return db;
}

// One closed-loop client: issue, wait, record, repeat. 90% reads (half
// indexed point lookups, half short range counts — the CPU slice) spread
// over ALL partitions, so even a single client's working set overflows the
// pool and every request pays device waits that concurrency can overlap;
// 10% UPDATEs stay on the client's own partition (disjoint relation locks;
// the commit pays the shared, group-committable fsync).
void RunClient(uint16_t port, int id, std::atomic<bool>* stop,
               std::atomic<bool>* recording, ClientTally* tally) {
  net::Client c;
  if (!c.Connect("127.0.0.1", port).ok()) return;
  const std::string own = "P" + std::to_string(id % kPartitions);
  for (int p = 0; p < kPartitions; ++p) {
    const std::string t = "P" + std::to_string(p);
    if (!c.Prepare("pt" + std::to_string(p),
                   "SELECT V FROM " + t + " WHERE PK = ?")
             .value()
             .ok() ||
        !c.Prepare("rg" + std::to_string(p),
                   "SELECT COUNT(*) FROM " + t + " WHERE PK >= ? AND PK <= ?")
             .value()
             .ok()) {
      return;
    }
  }
  Rng rng(0x5eedull * 1315423911u + id);
  while (!stop->load(std::memory_order_relaxed)) {
    int64_t k = rng.Uniform(0, kRowsPerPartition - 1);
    const std::string part = std::to_string(rng.Uniform(0, kPartitions - 1));
    double dice = rng.NextDouble();
    auto t0 = std::chrono::steady_clock::now();
    StatusOr<net::WireResult> r = Status::OK();
    if (dice < 0.45) {
      r = c.Execute("pt" + part, {Value::Int(k)});
    } else if (dice < 0.9) {
      int64_t hi = std::min<int64_t>(k + 150, kRowsPerPartition - 1);
      r = c.Execute("rg" + part, {Value::Int(k), Value::Int(hi)});
    } else {
      r = c.Query("UPDATE " + own + " SET V = V + 1 WHERE PK = " +
                  std::to_string(k));
    }
    auto t1 = std::chrono::steady_clock::now();
    if (!r.ok()) return;  // Transport failure: this client is done.
    bool record = recording->load(std::memory_order_relaxed);
    if (r->ok()) {
      if (record) {
        tally->latencies_us.push_back(
            std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
                .count());
        ++tally->completed;
      }
    } else if (r->code == StatusCode::kResourceExhausted &&
               r->message.find("admission queue full") != std::string::npos) {
      if (record) ++tally->shed;
      // The point of fast rejection: the client learns NOW and backs off.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    } else {
      if (record) ++tally->errors;
    }
  }
  c.Close();
}

SweepPoint RunPoint(const net::ServerOptions& opts, int clients,
                    int warmup_ms, int measure_ms) {
  std::unique_ptr<Database> db = BuildDatabase();
  db->rss().pool().set_sim_fetch_latency_us(kFetchLatencyUs);
  db->rss().wal().set_sync_delay_us(kSyncDelayUs);
  PlanCache cache(64);
  net::Server server(db.get(), &cache, opts);
  if (!server.Start().ok()) std::abort();

  std::atomic<bool> stop{false}, recording{false};
  std::vector<ClientTally> tallies(static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  for (int i = 0; i < clients; ++i) {
    threads.emplace_back(RunClient, server.port(), i, &stop, &recording,
                         &tallies[static_cast<size_t>(i)]);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(warmup_ms));
  net::ServerStatsSnapshot warm = server.stats();
  recording.store(true);
  auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(measure_ms));
  recording.store(false);
  auto t1 = std::chrono::steady_clock::now();
  stop.store(true);
  for (auto& t : threads) t.join();
  net::ServerStatsSnapshot end = server.stats();
  server.Stop();

  SweepPoint pt;
  pt.clients = clients;
  pt.wall_ms =
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count() /
      1000.0;
  std::vector<uint64_t> all;
  for (ClientTally& t : tallies) {
    pt.completed += t.completed;
    pt.shed += t.shed;
    pt.errors += t.errors;
    all.insert(all.end(), t.latencies_us.begin(), t.latencies_us.end());
  }
  pt.qps = pt.completed / (pt.wall_ms / 1000.0);
  pt.p50_us = Percentile(&all, 0.50);
  pt.p95_us = Percentile(&all, 0.95);
  pt.p99_us = Percentile(&all, 0.99);
  pt.server_shed = end.stmts_shed - warm.stmts_shed;
  pt.server_peak_active = end.peak_active;
  pt.wal_piggybacked = end.wal_piggybacked;
  return pt;
}

std::string PointJson(const SweepPoint& p) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "{\"clients\": %d, \"qps\": %.0f, \"completed\": %llu, "
      "\"shed\": %llu, \"errors\": %llu, \"p50_us\": %llu, \"p95_us\": %llu, "
      "\"p99_us\": %llu, \"server_shed\": %llu, \"peak_active\": %llu, "
      "\"wal_piggybacked\": %llu}",
      p.clients, p.qps, (unsigned long long)p.completed,
      (unsigned long long)p.shed, (unsigned long long)p.errors,
      (unsigned long long)p.p50_us, (unsigned long long)p.p95_us,
      (unsigned long long)p.p99_us, (unsigned long long)p.server_shed,
      (unsigned long long)p.server_peak_active,
      (unsigned long long)p.wal_piggybacked);
  return buf;
}

}  // namespace

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_10.json";
  int measure_ms = 1200;
  int warmup_ms = 400;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--measure-ms") == 0 && i + 1 < argc) {
      measure_ms = (int)std::strtol(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--warmup-ms") == 0 && i + 1 < argc) {
      warmup_ms = (int)std::strtol(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: bench_serving [--out PATH] [--measure-ms N] "
                   "[--warmup-ms N]\n");
      return 2;
    }
  }

  const int sweep[] = {1, 2, 4, 8, 16, 32};

  net::ServerOptions admitted;
  admitted.max_concurrent = kAdmitConcurrent;
  admitted.max_queue = kAdmitQueue;
  admitted.max_connections = 64;

  net::ServerOptions unlimited;
  unlimited.max_concurrent = 4096;  // Never binds: every arrival executes.
  unlimited.max_queue = 4096;
  unlimited.max_connections = 64;

  std::printf("%-10s %8s %10s %8s %8s %10s %10s %10s %6s\n", "config",
              "clients", "qps", "done", "shed", "p50_us", "p95_us", "p99_us",
              "peak");
  std::vector<SweepPoint> admitted_pts, unlimited_pts;
  for (bool is_admitted : {true, false}) {
    for (int n : sweep) {
      SweepPoint pt = RunPoint(is_admitted ? admitted : unlimited, n,
                               warmup_ms, measure_ms);
      std::printf("%-10s %8d %10.0f %8llu %8llu %10llu %10llu %10llu %6llu\n",
                  is_admitted ? "admitted" : "unlimited", n, pt.qps,
                  (unsigned long long)pt.completed,
                  (unsigned long long)pt.shed, (unsigned long long)pt.p50_us,
                  (unsigned long long)pt.p95_us, (unsigned long long)pt.p99_us,
                  (unsigned long long)pt.server_peak_active);
      std::fflush(stdout);
      (is_admitted ? admitted_pts : unlimited_pts).push_back(pt);
    }
  }

  auto find = [](const std::vector<SweepPoint>& pts, int n) {
    for (const SweepPoint& p : pts) {
      if (p.clients == n) return p;
    }
    return SweepPoint{};
  };
  // Headlines: QPS rises up to the admission limit; at 4x overload the
  // admitted tail holds (vs its own at-capacity tail) while the unlimited
  // tail keeps growing with the multiprogramming level.
  SweepPoint a1 = find(admitted_pts, 1), a8 = find(admitted_pts, 8);
  SweepPoint a32 = find(admitted_pts, 32);
  SweepPoint u8 = find(unlimited_pts, 8), u32 = find(unlimited_pts, 32);
  double qps_scaling_1_to_8 = a8.qps / std::max(1.0, a1.qps);
  double admitted_p99_growth_8_to_32 =
      (double)a32.p99_us / std::max<uint64_t>(1, a8.p99_us);
  double unlimited_p99_growth_8_to_32 =
      (double)u32.p99_us / std::max<uint64_t>(1, u8.p99_us);
  double p99_ratio_unlimited_vs_admitted_32 =
      (double)u32.p99_us / std::max<uint64_t>(1, a32.p99_us);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"serving\",\n");
  std::fprintf(f,
               "  \"workload\": \"90%% reads (point + range) / 10%% UPDATE, "
               "%d partitions x %lld rows, pool %zu pages, io %uus, "
               "fsync %uus\",\n",
               kPartitions, (long long)kRowsPerPartition, kPoolPages,
               kFetchLatencyUs, kSyncDelayUs);
  std::fprintf(f, "  \"admission\": {\"max_concurrent\": %zu, \"max_queue\": "
               "%zu},\n",
               kAdmitConcurrent, kAdmitQueue);
  std::fprintf(f, "  \"measure_ms\": %d,\n", measure_ms);
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"admitted\": [\n");
  for (size_t i = 0; i < admitted_pts.size(); ++i) {
    std::fprintf(f, "    %s%s\n", PointJson(admitted_pts[i]).c_str(),
                 i + 1 < admitted_pts.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"unlimited\": [\n");
  for (size_t i = 0; i < unlimited_pts.size(); ++i) {
    std::fprintf(f, "    %s%s\n", PointJson(unlimited_pts[i]).c_str(),
                 i + 1 < unlimited_pts.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"qps_scaling_1_to_8_admitted\": %.2f,\n",
               qps_scaling_1_to_8);
  std::fprintf(f, "  \"admitted_p99_growth_8_to_32\": %.2f,\n",
               admitted_p99_growth_8_to_32);
  std::fprintf(f, "  \"unlimited_p99_growth_8_to_32\": %.2f,\n",
               unlimited_p99_growth_8_to_32);
  std::fprintf(f, "  \"p99_ratio_unlimited_vs_admitted_at_32\": %.2f,\n",
               p99_ratio_unlimited_vs_admitted_32);
  std::fprintf(f, "  \"shed_at_32_admitted\": %llu\n",
               (unsigned long long)a32.server_shed);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace bench
}  // namespace systemr

int main(int argc, char** argv) { return systemr::bench::Main(argc, argv); }
