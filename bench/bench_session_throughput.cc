// BENCH 5 — multi-session query throughput (QPS) over one shared Database.
//
//   bench_session_throughput [--out PATH] [--min-ms N]
//
// Measures the two claims of the session subsystem:
//
//   compile-once  the plan cache removes parse+bind+optimize from the
//                 per-query path (cache on/off, single session);
//   concurrency   N sessions over one Database scale query throughput.
//
// Two storage regimes per thread count:
//
//   cpu  everything resident, zero simulated device latency. On a multi-core
//        host this shows lock-level scalability; on a single hardware thread
//        QPS is flat by construction (there is only one CPU to share).
//   io   buffer pool capacity is far below the working set and every miss
//        pays a simulated device read (sleep with the pool latch released).
//        Sessions overlap their waits, so QPS scales with thread count on
//        any host — the paper's regime, where cost ≈ page fetches and the
//        CPU is mostly idle between them.
//
// Writes BENCH_5.json. The headline acceptance number is
// scaling_1_to_4_io_cached (> 1.5 required).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "session/plan_cache.h"
#include "session/session.h"
#include "workload/querygen.h"

namespace systemr {
namespace bench {
namespace {

constexpr int64_t kRows = 20000;

// Parameterized statement mix: an indexed point lookup and a short indexed
// range, the bread-and-butter of a concurrent OLTP read workload.
const char* kStatements[] = {
    "SELECT R0.A, R0.B FROM R0 WHERE R0.PK = ?",
    "SELECT R1.PK FROM R1 WHERE R1.PK >= ? AND R1.PK <= ?",
};

struct ModeResult {
  std::string name;
  int threads = 0;
  bool cache_on = false;
  uint32_t io_latency_us = 0;
  uint64_t execs = 0;
  uint64_t optimizations = 0;
  uint64_t cache_hits = 0;
  double wall_ms = 0;
  double qps = 0;
};

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

ModeResult RunMode(Database* db, const std::string& name, int threads,
                   bool cache_on, uint32_t io_latency_us, int min_ms) {
  BufferPool& pool = db->rss().pool();
  pool.set_sim_fetch_latency_us(io_latency_us);
  // Cold pool per mode so regimes don't inherit each other's residency.
  pool.FlushAll();

  PlanCache cache(64);
  std::atomic<bool> stop{false};
  std::atomic<int> ready{0};
  std::vector<uint64_t> execs(static_cast<size_t>(threads), 0);
  std::vector<SessionStats> session_stats(static_cast<size_t>(threads));

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Session session(db, cache_on ? &cache : nullptr);
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (ready.load(std::memory_order_acquire) < threads + 1) {
        std::this_thread::yield();
      }
      uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // Deterministic per-thread key stream spread over the whole table.
        int64_t k = (static_cast<int64_t>(t) * 7919 +
                     static_cast<int64_t>(n) * 104729) %
                    kRows;
        StatusOr<QueryResult> r =
            (n & 1) == 0
                ? session.ExecuteQuery(kStatements[0], {Value::Int(k)})
                : session.ExecuteQuery(
                      kStatements[1],
                      {Value::Int(k / 2), Value::Int(k / 2 + 8)});
        if (!r.ok()) Die(r.status());
        ++n;
      }
      execs[t] = n;
      session_stats[t] = session.stats();
    });
  }

  while (ready.load(std::memory_order_acquire) < threads) {
    std::this_thread::yield();
  }
  auto t0 = std::chrono::steady_clock::now();
  ready.fetch_add(1, std::memory_order_acq_rel);  // Release the barrier.
  std::this_thread::sleep_for(std::chrono::milliseconds(min_ms));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& w : workers) w.join();
  auto t1 = std::chrono::steady_clock::now();

  ModeResult r;
  r.name = name;
  r.threads = threads;
  r.cache_on = cache_on;
  r.io_latency_us = io_latency_us;
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  for (int t = 0; t < threads; ++t) {
    r.execs += execs[t];
    r.optimizations += session_stats[t].optimizations;
    r.cache_hits += session_stats[t].cache_hits;
  }
  r.qps = static_cast<double>(r.execs) / (r.wall_ms / 1000.0);
  pool.set_sim_fetch_latency_us(0);
  return r;
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_5.json";
  int min_ms = 400;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--min-ms") == 0 && i + 1 < argc) {
      min_ms = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: bench_session_throughput [--out PATH] [--min-ms N]\n");
      return 2;
    }
  }

  Database db(256);
  ChainSchemaSpec spec;
  spec.num_tables = 2;
  spec.base_rows = kRows;
  spec.shrink = 0.5;
  spec.a_domain = 100;
  spec.b_domain = 100;
  Die(BuildChainSchema(&db, spec, 1979));

  // I/O regime: working set (index + heap pages of R0/R1) far exceeds the
  // frame budget, and each miss waits on the simulated device.
  constexpr size_t kIoPoolPages = 32;
  constexpr uint32_t kIoLatencyUs = 100;

  Header("BENCH 5 — session throughput (QPS), shared Database");
  std::printf("hardware threads: %u\n\n",
              std::thread::hardware_concurrency());
  std::printf("%-16s | %7s %5s %7s | %10s %10s | %9s %9s\n", "mode", "threads",
              "cache", "io(us)", "execs", "qps", "optimize", "cachehit");

  std::vector<ModeResult> results;
  auto run = [&](const std::string& name, int threads, bool cache_on,
                 uint32_t latency) {
    if (latency > 0) db.rss().pool().set_capacity(kIoPoolPages);
    ModeResult r = RunMode(&db, name, threads, cache_on, latency, min_ms);
    if (latency > 0) db.rss().pool().set_capacity(256);
    std::printf("%-16s | %7d %5s %7u | %10llu %10s | %9llu %9llu\n",
                r.name.c_str(), r.threads, r.cache_on ? "on" : "off",
                r.io_latency_us, (unsigned long long)r.execs,
                Num(r.qps).c_str(), (unsigned long long)r.optimizations,
                (unsigned long long)r.cache_hits);
    results.push_back(std::move(r));
  };

  run("cpu_nocache_t1", 1, false, 0);
  run("cpu_cache_t1", 1, true, 0);
  run("cpu_nocache_t4", 4, false, 0);
  run("cpu_cache_t4", 4, true, 0);
  run("io_cache_t1", 1, true, kIoLatencyUs);
  run("io_cache_t2", 2, true, kIoLatencyUs);
  run("io_cache_t4", 4, true, kIoLatencyUs);
  run("io_nocache_t4", 4, false, kIoLatencyUs);

  auto qps_of = [&](const std::string& name) {
    for (const ModeResult& r : results) {
      if (r.name == name) return r.qps;
    }
    return 0.0;
  };
  double scaling_io = qps_of("io_cache_t4") / qps_of("io_cache_t1");
  double scaling_cpu = qps_of("cpu_cache_t4") / qps_of("cpu_cache_t1");
  double cache_speedup_t1 = qps_of("cpu_cache_t1") / qps_of("cpu_nocache_t1");
  std::printf(
      "\nscaling 1->4 threads: io-bound %.2fx, cpu-bound %.2fx "
      "(on %u hardware threads)\nplan-cache speedup (1 thread, cpu): %.2fx\n",
      scaling_io, scaling_cpu, std::thread::hardware_concurrency(),
      cache_speedup_t1);

  std::string out = "{\n  \"bench\": \"session_throughput\",\n";
  out += "  \"min_ms_per_mode\": " + std::to_string(min_ms) + ",\n";
  out += "  \"hardware_threads\": " +
         std::to_string(std::thread::hardware_concurrency()) + ",\n";
  out += "  \"io_latency_us\": " + std::to_string(kIoLatencyUs) + ",\n";
  out += "  \"io_pool_pages\": " + std::to_string(kIoPoolPages) + ",\n";
  out += "  \"modes\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ModeResult& r = results[i];
    double hit_rate =
        r.execs == 0 ? 0.0
                     : static_cast<double>(r.cache_hits) /
                           static_cast<double>(r.execs);
    out += "    {\"name\": \"" + r.name + "\"";
    out += ", \"threads\": " + std::to_string(r.threads);
    out += ", \"cache\": ";
    out += r.cache_on ? "true" : "false";
    out += ", \"io_latency_us\": " + std::to_string(r.io_latency_us);
    out += ", \"execs\": " + std::to_string(r.execs);
    out += ", \"wall_ms\": " + Num(r.wall_ms);
    out += ", \"qps\": " + Num(r.qps);
    out += ", \"optimizations\": " + std::to_string(r.optimizations);
    out += ", \"cache_hits\": " + std::to_string(r.cache_hits);
    out += ", \"cache_hit_rate\": " + Num(hit_rate * 100.0);
    out += "}";
    out += i + 1 < results.size() ? ",\n" : "\n";
  }
  out += "  ],\n";
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "  \"scaling_1_to_4_io_cached\": %.2f,\n"
                "  \"scaling_1_to_4_cpu_cached\": %.2f,\n"
                "  \"plan_cache_speedup_t1_cpu\": %.2f\n",
                scaling_io, scaling_cpu, cache_speedup_t1);
  out += buf;
  out += "}\n";

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 2;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("\nreport: %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace systemr

int main(int argc, char** argv) { return systemr::bench::Main(argc, argv); }
