// E2 — TABLE 2 reproduction: for each access-path situation, the predicted
// cost formula vs the metered cost of actually executing that path.
#include <cstdio>

#include "bench_common.h"
#include "optimizer/access_path_gen.h"
#include "workload/datagen.h"

namespace systemr {
namespace bench {
namespace {

void Report(const char* label, const char* formula, const AccessPath& path,
            const ExecResult& exec, double w) {
  std::printf("%-38s %-34s | %9.1f %9.1f %9.1f | %9llu %9llu %9.1f\n", label,
              formula, path.cost.pages, path.cost.rsi, path.cost.cost,
              static_cast<unsigned long long>(exec.stats.page_io()),
              static_cast<unsigned long long>(exec.stats.rsi_calls),
              exec.stats.ActualCost(w));
}

const AccessPath* FindPath(const std::vector<AccessPath>& paths,
                           AccessSituation situation,
                           const std::string& index_name = "") {
  for (const AccessPath& p : paths) {
    if (p.cost.situation != situation) continue;
    if (!index_name.empty() &&
        (p.node->scan.index == nullptr ||
         p.node->scan.index->name != index_name)) {
      continue;
    }
    return &p;
  }
  return nullptr;
}

int Main() {
  const size_t kBufferPages = 128;
  Database db(kBufferPages);
  DataGen gen(&db, 23);
  // 120000 rows ≈ 1500 data pages >> buffer, so the non-clustered
  // large-relation case is exercised. C is the clustered key; A is a
  // non-clustered indexed column; K is a unique key.
  TableSpec t;
  t.name = "T";
  t.num_rows = 120000;
  t.columns = {{"K", ValueType::kInt64, 120000, 0, true},
               {"C", ValueType::kInt64, 100, 0, false},
               {"A", ValueType::kInt64, 100, 0, false},
               {"PAD", ValueType::kString, 120000, 0, false, 16}};
  t.indexes = {{"T_K", {"K"}, true, false},
               {"T_C", {"C"}, false, true},
               {"T_A", {"A"}, false, false}};
  t.cluster_by = "C";
  Die(gen.CreateAndLoad(t));

  const TableInfo* info = db.catalog().FindTable("T");
  std::printf("Catalog: NCARD=%llu TCARD=%llu P=%.2f buffer=%zu pages\n",
              static_cast<unsigned long long>(info->ncard),
              static_cast<unsigned long long>(info->tcard), info->p,
              kBufferPages);
  double w = db.options().cost.w;

  Header("TABLE 2 — single-relation access path costs: predicted vs metered");
  std::printf("%-38s %-34s | %9s %9s %9s | %9s %9s %9s\n", "situation",
              "paper formula", "pred.pg", "pred.rsi", "pred.cost", "act.pg",
              "act.rsi", "act.cost");

  struct Probe {
    const char* label;
    const char* formula;
    std::string sql;
    AccessSituation situation;
    std::string index;
  };
  std::vector<Probe> probes = {
      {"unique index, equal predicate", "1 + 1 + W",
       "SELECT K FROM T WHERE K = 60000", AccessSituation::kUniqueIndexEqual,
       "T_K"},
      {"clustered index, matching factor", "F*(NINDX+TCARD) + W*RSICARD",
       "SELECT K FROM T WHERE C = 42",
       AccessSituation::kClusteredIndexMatching, "T_C"},
      {"non-clustered index, matching", "F*(NINDX+NCARD) + W*RSICARD",
       "SELECT K FROM T WHERE A = 42",
       AccessSituation::kNonClusteredIndexMatching, "T_A"},
      {"clustered index, non-matching", "(NINDX+TCARD) + W*RSICARD",
       "SELECT K FROM T", AccessSituation::kClusteredIndexNonMatching,
       "T_C"},
      {"non-clustered index, non-matching", "(NINDX+NCARD) + W*RSICARD",
       "SELECT K FROM T", AccessSituation::kNonClusteredIndexNonMatching,
       "T_A"},
      {"segment scan", "TCARD/P + W*RSICARD", "SELECT K FROM T",
       AccessSituation::kSegmentScan, ""},
  };

  for (const Probe& probe : probes) {
    auto h = Harness::Make(&db, probe.sql, {}, /*run=*/false);
    auto paths = GenerateAccessPaths(h->ctx, 0, 0);
    const AccessPath* path = FindPath(paths, probe.situation, probe.index);
    if (path == nullptr) {
      std::printf("%-38s: situation not generated!\n", probe.label);
      continue;
    }
    ExecResult exec = ExecuteCold(&db, *h->block, path->node);
    Report(probe.label, probe.formula, *path, exec, w);
  }

  Header("Buffer-fit variant (non-clustered matching)");
  std::printf(
      "The formula switches from F*(NINDX+TCARD) to F*(NINDX+NCARD) when the\n"
      "touched pages no longer fit in the buffer:\n\n");
  std::printf("%-14s %12s %12s %12s\n", "buffer(pages)", "pred.pages",
              "act.pages", "regime");
  for (size_t buffers : {8u, 32u, 128u, 4096u}) {
    db.options().cost.buffer_pages = buffers;
    db.rss().pool().set_capacity(buffers);
    auto h = Harness::Make(&db, "SELECT K FROM T WHERE A = 42", {}, false);
    auto paths = GenerateAccessPaths(h->ctx, 0, 0);
    const AccessPath* path =
        FindPath(paths, AccessSituation::kNonClusteredIndexMatching, "T_A");
    if (path == nullptr) continue;
    ExecResult exec = ExecuteCold(&db, *h->block, path->node);
    double fit = path->cost.pages;
    bool small = fit > static_cast<double>(buffers);
    std::printf("%-14zu %12.1f %12llu %12s\n", buffers, fit,
                static_cast<unsigned long long>(exec.stats.page_io()),
                small ? "NCARD (thrash)" : "TCARD (fits)");
  }
  db.options().cost.buffer_pages = kBufferPages;
  db.rss().pool().set_capacity(kBufferPages);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace systemr

int main() { return systemr::bench::Main(); }
