// Shared helpers for the reproduction benches: planner harness construction
// (mirroring Optimizer::PlanBlock so benches can inspect the search tree),
// plan execution with buffer flushing, and table printing.
#ifndef SYSTEMR_BENCH_BENCH_COMMON_H_
#define SYSTEMR_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "db/database.h"
#include "exec/executor.h"
#include "optimizer/cnf.h"
#include "optimizer/explain.h"
#include "optimizer/join_enumerator.h"
#include "optimizer/selectivity.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace systemr {
namespace bench {

/// Planner state for one query, with the enumerator exposed.
struct Harness {
  std::unique_ptr<BoundQueryBlock> block;
  CostModel cost_model{CostParams{}};
  std::unique_ptr<SelectivityEstimator> sel;
  std::vector<BooleanFactor> factors;
  OrderClasses classes;
  PlannerContext ctx;
  std::unique_ptr<JoinEnumerator> enumerator;

  static std::unique_ptr<Harness> Make(Database* db, const std::string& sql,
                                       JoinEnumerator::Options options = {},
                                       bool run = true) {
    auto h = std::make_unique<Harness>();
    auto stmt = Parse(sql);
    if (!stmt.ok()) {
      std::fprintf(stderr, "parse error: %s\n",
                   stmt.status().ToString().c_str());
      std::abort();
    }
    Binder binder(&db->catalog());
    auto block = binder.Bind(*stmt->select);
    if (!block.ok()) {
      std::fprintf(stderr, "bind error: %s\n",
                   block.status().ToString().c_str());
      std::abort();
    }
    h->block = std::move(*block);
    h->cost_model = CostModel(db->options().cost);
    h->sel = std::make_unique<SelectivityEstimator>(&db->catalog(),
                                                    h->block.get());
    h->factors = ExtractBooleanFactors(*h->block);
    for (BooleanFactor& f : h->factors) {
      f.selectivity = h->sel->FactorSelectivity(*f.expr);
    }
    for (const BooleanFactor& f : h->factors) {
      if (f.join.has_value() && f.join->is_equi()) {
        h->classes.Union(f.join->t1, f.join->c1, f.join->t2, f.join->c2);
      }
    }
    h->ctx = PlannerContext{h->block.get(), &db->catalog(), &h->cost_model,
                            h->sel.get(), &h->factors, &h->classes};
    h->enumerator = std::make_unique<JoinEnumerator>(h->ctx, options);
    if (run) {
      Status st = h->enumerator->Run();
      if (!st.ok()) {
        std::fprintf(stderr, "enumerate error: %s\n", st.ToString().c_str());
        std::abort();
      }
    }
    return h;
  }
};

/// Executes a complete plan (cold buffer pool) and returns metered stats.
inline ExecResult ExecuteCold(Database* db, const BoundQueryBlock& block,
                              const PlanRef& plan,
                              const SubplanMap* subplans = nullptr) {
  db->rss().pool().FlushAll();
  static const SubplanMap kEmpty;
  ExecContext ctx(&db->rss(), &db->catalog(),
                  subplans != nullptr ? subplans : &kEmpty,
                  db->options().cost.w);
  auto result = ExecutePlan(&ctx, block, plan);
  if (!result.ok()) {
    std::fprintf(stderr, "execute error: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(*result);
}

inline void Die(const Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "fatal: %s\n", st.ToString().c_str());
    std::abort();
  }
}

template <typename T>
T Unwrap(StatusOr<T> v) {
  if (!v.ok()) {
    std::fprintf(stderr, "fatal: %s\n", v.status().ToString().c_str());
    std::abort();
  }
  return std::move(v).value();
}

inline void Header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace bench
}  // namespace systemr

#endif  // SYSTEMR_BENCH_BENCH_COMMON_H_
