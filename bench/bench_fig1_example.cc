// E3 — Figure 1 reproduction: the paper's example query ("retrieve the name,
// salary, job title, and department name of employees who are clerks and
// work for departments in Denver"), planned and executed end-to-end.
#include <cstdio>

#include "bench_common.h"
#include "workload/datagen.h"

namespace systemr {
namespace bench {
namespace {

constexpr const char* kFig1Sql =
    "SELECT NAME, TITLE, SAL, DNAME "
    "FROM EMP, DEPT, JOB "
    "WHERE TITLE = 'CLERK' AND LOC = 'DENVER' "
    "AND EMP.DNO = DEPT.DNO AND EMP.JOB = JOB.JOB";

int Main() {
  Database db(256);
  DataGen gen(&db, 1979);
  Die(gen.LoadPaperExample(20000, 100, 50));

  Header("Figure 1 — the JOIN example");
  std::printf("SQL: %s\n", kFig1Sql);

  for (const char* table : {"EMP", "DEPT", "JOB"}) {
    const TableInfo* t = db.catalog().FindTable(table);
    std::printf("  %-5s NCARD=%-7llu TCARD=%-5llu indexes:", table,
                static_cast<unsigned long long>(t->ncard),
                static_cast<unsigned long long>(t->tcard));
    for (IndexId iid : t->indexes) {
      const IndexInfo* i = db.catalog().index(iid);
      std::printf(" %s(ICARD=%llu,NINDX=%llu%s)", i->name.c_str(),
                  static_cast<unsigned long long>(i->icard_leading),
                  static_cast<unsigned long long>(i->nindx),
                  i->clustered ? ",clustered" : "");
    }
    std::printf("\n");
  }

  OptimizedQuery prepared = Unwrap(db.Prepare(kFig1Sql));
  Header("Chosen access plan");
  std::printf("%s", ExplainPlan(prepared.root, *prepared.block).c_str());
  std::printf("estimated cost=%.1f  estimated rows=%.1f\n", prepared.est_cost,
              prepared.est_rows);
  std::printf("optimizer search: %zu solutions stored, %zu generated, "
              "~%zu bytes\n",
              prepared.solutions_stored, prepared.solutions_generated,
              prepared.search_bytes);

  db.rss().pool().FlushAll();
  QueryResult result = Unwrap(db.Run(prepared));
  Header("Execution (cold buffer pool)");
  std::printf("rows returned: %zu\n", result.rows.size());
  std::printf("page I/O: %llu   RSI calls: %llu   actual cost: %.1f\n",
              static_cast<unsigned long long>(result.stats.page_io()),
              static_cast<unsigned long long>(result.stats.rsi_calls),
              result.actual_cost);
  std::printf("\nFirst rows:\n%s", result.ToString(5).c_str());

  // Baseline comparison on the same query.
  Header("Same query under the baseline strategies");
  std::printf("%-32s %14s %14s\n", "strategy", "est. cost", "actual cost");
  std::printf("%-32s %14.1f %14.1f\n", "System R optimizer (this paper)",
              prepared.est_cost, result.actual_cost);
  for (BaselineKind kind :
       {BaselineKind::kSyntacticNestedLoop, BaselineKind::kGreedy}) {
    OptimizedQuery base = Unwrap(db.PrepareBaseline(kFig1Sql, kind));
    db.rss().pool().FlushAll();
    QueryResult r = Unwrap(db.Run(base));
    std::printf("%-32s %14.1f %14.1f\n", BaselineName(kind), base.est_cost,
                r.actual_cost);
    if (r.rows.size() != result.rows.size()) {
      std::printf("  !! row count mismatch (%zu vs %zu)\n", r.rows.size(),
                  result.rows.size());
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace systemr

int main() { return systemr::bench::Main(); }
