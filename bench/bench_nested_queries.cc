// E10 — §6 reproduction (nested queries): evaluation counts for scalar,
// IN-list, and correlated subqueries, including the paper's two key
// optimizations:
//   (a) uncorrelated subqueries are evaluated exactly once;
//   (b) a correlated subquery is re-evaluated only when the referenced value
//       changes — so ordering the outer relation on the referenced column
//       collapses re-evaluations to one per distinct value ("it might even
//       pay to sort the referenced relation on the referenced column").
#include <cstdio>
#include <functional>

#include "bench_common.h"
#include "exec/executor.h"
#include "workload/datagen.h"

namespace systemr {
namespace bench {
namespace {

struct RunResult {
  size_t rows;
  uint64_t evaluations;
  uint64_t hits;
  double actual_cost;
};

RunResult RunWithCache(Database* db, const std::string& sql) {
  OptimizedQuery q = Unwrap(db->Prepare(sql));
  // Find the (single) nested block.
  const BoundQueryBlock* sub = nullptr;
  std::function<void(const BoundExpr&)> find = [&](const BoundExpr& e) {
    if (e.subquery != nullptr) sub = e.subquery.get();
    for (const auto& c : e.children) find(*c);
  };
  if (q.block->where != nullptr) find(*q.block->where);

  db->rss().pool().FlushAll();
  ExecContext ctx(&db->rss(), &db->catalog(), &q.subquery_plans,
                  db->options().cost.w);
  auto result = ExecutePlan(&ctx, *q.block, q.root);
  Die(result.status());
  RunResult out;
  out.rows = result->rows.size();
  const auto& cache = ctx.CacheFor(sub);
  out.evaluations = cache.evaluations;
  out.hits = cache.hits;
  out.actual_cost = result->stats.ActualCost(db->options().cost.w);
  return out;
}

int Main() {
  // EMP clustered on DNO: the correlated DNO value repeats consecutively.
  Database clustered(256);
  {
    DataGen gen(&clustered, 42);
    Die(gen.LoadPaperExample(12000, 60, 30));
  }
  // A second database with EMP physically scattered on DNO.
  Database scattered(256);
  {
    DataGen gen(&scattered, 42);
    TableSpec emp;
    emp.name = "EMP";
    emp.num_rows = 12000;
    emp.columns = {{"NAME", ValueType::kString, 12000, 0, false, 10},
                   {"DNO", ValueType::kInt64, 60, 0, false},
                   {"JOB", ValueType::kInt64, 30, 0.5, false},
                   {"SAL", ValueType::kInt64, 50000, 0, false}};
    emp.indexes = {{"EMP_DNO", {"DNO"}, false, false}};
    Die(gen.CreateAndLoad(emp));
    TableSpec dept;
    dept.name = "DEPT";
    dept.num_rows = 60;
    dept.columns = {{"DNO", ValueType::kInt64, 60, 0, true},
                    {"LOC", ValueType::kString, 10, 0, false, 8}};
    dept.indexes = {{"DEPT_DNO", {"DNO"}, true, true}};
    Die(gen.CreateAndLoad(dept));
  }

  Header("E10 — §6 nested query evaluation counts");

  // (a) Uncorrelated scalar subquery: the §2/§6 AVG example.
  {
    RunResult r = RunWithCache(
        &clustered,
        "SELECT NAME FROM EMP WHERE SAL > (SELECT AVG(SAL) FROM EMP)");
    std::printf(
        "uncorrelated scalar (AVG):    evaluated %llu time(s), reused %llu "
        "times, %zu rows\n",
        (unsigned long long)r.evaluations, (unsigned long long)r.hits,
        r.rows);
  }

  // (b) Uncorrelated IN subquery → temporary list.
  {
    RunResult r = RunWithCache(
        &clustered,
        "SELECT NAME FROM EMP WHERE DNO IN "
        "(SELECT DNO FROM DEPT WHERE LOC = 'DENVER')");
    std::printf(
        "uncorrelated IN (temp list):  evaluated %llu time(s), reused %llu "
        "times, %zu rows\n",
        (unsigned long long)r.evaluations, (unsigned long long)r.hits,
        r.rows);
  }

  // (c) Correlated subquery, outer clustered vs scattered on the referenced
  // column.
  const std::string correlated =
      "SELECT NAME FROM EMP X WHERE SAL > "
      "(SELECT AVG(SAL) FROM EMP WHERE DNO = X.DNO)";
  RunResult ordered = RunWithCache(&clustered, correlated);
  RunResult random = RunWithCache(&scattered, correlated);
  std::printf(
      "correlated, EMP ordered by DNO:   %6llu evaluations, %6llu cache "
      "reuses  (cost %.0f)\n",
      (unsigned long long)ordered.evaluations,
      (unsigned long long)ordered.hits, ordered.actual_cost);
  std::printf(
      "correlated, EMP scattered on DNO: %6llu evaluations, %6llu cache "
      "reuses  (cost %.0f)\n",
      (unsigned long long)random.evaluations, (unsigned long long)random.hits,
      random.actual_cost);
  std::printf(
      "\nPaper §6: with the outer relation ordered on the referenced column,\n"
      "re-evaluation 'can be made conditional on a test of whether the\n"
      "current referenced value is the same as the previous candidate\n"
      "tuple's' — here %llu evaluations for 60 distinct departments instead\n"
      "of one per candidate tuple (%llu).\n",
      (unsigned long long)ordered.evaluations,
      (unsigned long long)random.evaluations);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace systemr

int main() { return systemr::bench::Main(); }
