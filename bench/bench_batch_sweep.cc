// bench_batch_sweep — scalar vs vectorized predicate evaluation across
// batch sizes (companion to BENCH_6).
//
// The vectorized executor amortizes per-call overhead (virtual dispatch,
// interrupt checks, meter updates) over a block of rows and lets single
// comparisons run a branch-light fast path over a selection vector. This
// bench isolates the expression layer: the same predicate is evaluated over
// the same 64K in-memory rows either one row at a time (ExprProgram::
// EvalBool) or in blocks (ExprProgram::EvalBoolBatch) of 1, 64, 256, 1024
// and 4096 rows, and reports nanoseconds per row for each combination.
//
// Three predicate shapes cover the classifier's tiers:
//   colconst — R0.A < 50            (kColConst fast path)
//   colcol   — R0.A < R0.B          (kColCol fast path)
//   generic  — arith + OR + BETWEEN (per-row compiled program loop)
//
// Batch size 1 measures pure dispatch overhead (a batch call per row);
// the plateau past ~256 rows is why kBatchRows = 1024 — large enough to
// sit on the flat part of the curve, small enough that a batch of widest
// rows stays cache-resident.
//
//   bench_batch_sweep [--out PATH] [--rows N] [--reps N]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "exec/batch.h"
#include "exec/expr_program.h"
#include "workload/querygen.h"

namespace systemr {
namespace bench {
namespace {

constexpr size_t kSweep[] = {1, 64, 256, 1024, 4096};

struct SweepResult {
  std::string pred;
  size_t batch_rows = 0;  // 0 = scalar EvalBool baseline.
  double ns_per_row = 0;
  uint64_t passed = 0;  // Sanity: must match across modes per predicate.
};

double NowNs() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_6_sweep.json";
  size_t num_rows = 1 << 16;
  int reps = 32;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc) {
      num_rows = static_cast<size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: bench_batch_sweep [--out PATH] [--rows N] "
                   "[--reps N]\n");
      return 2;
    }
  }

  // A tiny catalog provides the schema to bind predicates against; the rows
  // under test never touch storage.
  Database db(64);
  ChainSchemaSpec spec;
  spec.num_tables = 1;
  spec.base_rows = 16;
  Die(BuildChainSchema(&db, spec, 1979));

  const struct {
    const char* name;
    const char* sql;
  } kPreds[] = {
      {"colconst", "SELECT R0.PK FROM R0 WHERE R0.A < 50"},
      {"colcol", "SELECT R0.PK FROM R0 WHERE R0.A < R0.B"},
      {"generic",
       "SELECT R0.PK FROM R0 "
       "WHERE R0.A + R0.B < 60 OR R0.B BETWEEN 5 AND 25"},
  };

  static const SubplanMap kEmpty;
  ExecContext ctx(&db.rss(), &db.catalog(), &kEmpty, db.options().cost.w);

  Header("BENCH 6 sweep — scalar vs batched predicate evaluation");
  std::printf("%8s | %10s | %10s | %10s\n", "pred", "batch", "ns/row",
              "passed");

  std::vector<SweepResult> results;
  for (const auto& p : kPreds) {
    auto h = Harness::Make(&db, p.sql, {}, false);
    ExprProgram prog;
    prog.CompileExpr(h->block->where.get());

    // Synthetic rows at the block's full width, A and B cycling 0..99 with
    // coprime periods so every predicate sees a mixed pass/fail stream.
    std::vector<Row> rows(num_rows);
    size_t off_a = h->block->OffsetOf(0, 2);  // PK, FK, A, B, ...
    size_t off_b = h->block->OffsetOf(0, 3);
    for (size_t i = 0; i < num_rows; ++i) {
      rows[i].assign(h->block->row_width, Value::Int(0));
      rows[i][off_a] = Value::Int(static_cast<int64_t>(i % 100));
      rows[i][off_b] = Value::Int(static_cast<int64_t>((i * 7) % 100));
    }

    // Scalar baseline: one EvalBool call per row.
    uint64_t scalar_passed = 0;
    double scalar_ns = 0;
    {
      double t0 = NowNs();
      for (int rep = 0; rep < reps; ++rep) {
        uint64_t passed = 0;
        for (const Row& r : rows) {
          bool ok = false;
          Die(prog.EvalBool(&ctx, r, &ok));
          passed += ok ? 1 : 0;
        }
        scalar_passed = passed;
      }
      scalar_ns = (NowNs() - t0) / (static_cast<double>(reps) * num_rows);
    }
    results.push_back({p.name, 0, scalar_ns, scalar_passed});
    std::printf("%8s | %10s | %10.2f | %10llu\n", p.name, "scalar",
                scalar_ns, (unsigned long long)scalar_passed);

    // Batched: refill the selection vector per block, let EvalBoolBatch
    // compact it, and count survivors.
    for (size_t batch : kSweep) {
      std::vector<uint32_t> sel;
      sel.reserve(batch);
      uint64_t passed = 0;
      double t0 = NowNs();
      for (int rep = 0; rep < reps; ++rep) {
        passed = 0;
        for (size_t base = 0; base < num_rows; base += batch) {
          size_t n = std::min(batch, num_rows - base);
          sel.resize(n);
          for (size_t i = 0; i < n; ++i) {
            sel[i] = static_cast<uint32_t>(base + i);
          }
          Die(prog.EvalBoolBatch(&ctx, rows, &sel));
          passed += sel.size();
        }
      }
      double ns = (NowNs() - t0) / (static_cast<double>(reps) * num_rows);
      if (passed != scalar_passed) {
        std::fprintf(stderr, "pass-count mismatch in %s @ %zu: %llu vs %llu\n",
                     p.name, batch, (unsigned long long)passed,
                     (unsigned long long)scalar_passed);
        return 2;
      }
      results.push_back({p.name, batch, ns, passed});
      std::printf("%8s | %10zu | %10.2f | %10llu\n", p.name, batch, ns,
                  (unsigned long long)passed);
    }
  }

  std::string out = "{\n  \"bench\": \"batch_sweep\",\n";
  out += "  \"rows\": " + std::to_string(num_rows) + ",\n";
  out += "  \"reps\": " + std::to_string(reps) + ",\n";
  out += "  \"default_batch_rows\": " + std::to_string(kBatchRows) + ",\n";
  out += "  \"points\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const SweepResult& r = results[i];
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.2f", r.ns_per_row);
    out += "    {\"pred\": \"" + r.pred + "\"";
    out += ", \"batch_rows\": " + std::to_string(r.batch_rows);
    out += ", \"mode\": \"" +
           std::string(r.batch_rows == 0 ? "scalar" : "batch") + "\"";
    out += ", \"ns_per_row\": " + std::string(buf);
    out += ", \"passed\": " + std::to_string(r.passed);
    out += "}";
    out += i + 1 < results.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 2;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("\nreport: %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace systemr

int main(int argc, char** argv) { return systemr::bench::Main(argc, argv); }
