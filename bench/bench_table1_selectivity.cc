// E1 — TABLE 1 reproduction: for every selectivity-factor rule in the paper,
// print the paper's formula, our optimizer's estimate F, and the fraction of
// tuples actually satisfying the predicate on synthetic data.
#include <cstdio>

#include "bench_common.h"
#include "workload/datagen.h"

namespace systemr {
namespace bench {
namespace {

struct Case {
  const char* rule;      // Table 1 row.
  const char* formula;   // Paper formula.
  std::string predicate; // SQL predicate over T (and U for join rows).
  bool join = false;     // Needs U in the FROM list.
  double expected;       // The paper-formula value for this catalog.
};

double MeasuredFraction(Database* db, const Case& c) {
  std::string from = c.join ? "T, U" : "T";
  auto r = Unwrap(db->Query("SELECT COUNT(*) FROM " + from + " WHERE " +
                            c.predicate));
  double total = c.join ? 200000.0 * 400.0 : 200000.0;
  return static_cast<double>(r.rows[0][0].AsInt()) / total;
}

double EstimatedF(Database* db, const Case& c) {
  std::string from = c.join ? "T, U" : "T";
  auto h = Harness::Make(db, "SELECT COUNT(*) FROM " + from + " WHERE " +
                                 c.predicate,
                         {}, /*run=*/false);
  double f = 1.0;
  for (const BooleanFactor& factor : h->factors) {
    f *= h->sel->FactorSelectivity(*factor.expr);
  }
  return f;
}

int Main() {
  Database db(512);
  DataGen gen(&db, 17);
  // T: 200000 rows; A uniform on [0,100) with an index; B uniform on [0,50)
  // without one; K a unique key.
  TableSpec t;
  t.name = "T";
  t.num_rows = 200000;
  t.columns = {{"K", ValueType::kInt64, 200000, 0, true},
               {"A", ValueType::kInt64, 100, 0, false},
               {"B", ValueType::kInt64, 50, 0, false},
               {"S", ValueType::kString, 20, 0, false}};
  t.indexes = {{"T_K", {"K"}, true, false}, {"T_A", {"A"}, false, false}};
  Die(gen.CreateAndLoad(t));
  // U: 400 rows; A on [0,25) indexed.
  TableSpec u;
  u.name = "U";
  u.num_rows = 400;
  u.columns = {{"K", ValueType::kInt64, 400, 0, true},
               {"A", ValueType::kInt64, 25, 0, false}};
  u.indexes = {{"U_A", {"A"}, false, false}};
  Die(gen.CreateAndLoad(u));

  std::vector<Case> cases = {
      {"col = value (index on col)", "1/ICARD = 1/100", "A = 7", false,
       1.0 / 100},
      {"col = value (no index)", "1/10", "B = 7", false, 0.1},
      {"col1 = col2 (both indexed)", "1/max(ICARD) = 1/100", "T.A = U.A",
       true, 1.0 / 100},
      {"col1 = col2 (one indexed)", "1/ICARD = 1/25", "T.B = U.A", true,
       1.0 / 25},
      {"col1 = col2 (neither indexed)", "1/10", "T.B = U.K", true, 0.1},
      {"col > value (interpolated)", "(high-val)/(high-low) = 74/99",
       "A > 25", false, 74.0 / 99},
      {"col < value (interpolated)", "(val-low)/(high-low) = 25/99",
       "A < 25", false, 25.0 / 99},
      {"col > value (no stats basis)", "1/3", "B > 24", false, 1.0 / 3},
      {"col BETWEEN v1 AND v2 (interp.)", "(v2-v1)/(high-low) = 20/99",
       "A BETWEEN 30 AND 50", false, 20.0 / 99},
      {"col BETWEEN v1 AND v2 (default)", "1/4", "B BETWEEN 10 AND 20",
       false, 0.25},
      {"col IN (list) (indexed)", "n * 1/ICARD = 3/100", "A IN (1, 2, 3)",
       false, 3.0 / 100},
      {"col IN (list) (capped)", "min(8 * 1/10, 1/2) = 1/2",
       "B IN (0,1,2,3,4,5,6,7)", false, 0.5},
      {"colA IN subquery", "QCARD(sub)/prod(NCARD) = 1/25",
       "A IN (SELECT A FROM U WHERE U.A = 3)", false, 1.0 / 25},
      {"(p1) OR (p2)", "F1+F2-F1*F2 = 0.19", "B = 1 OR B = 2", false, 0.19},
      {"(p1) AND (p2)", "F1*F2 = 1/1000", "A = 1 AND B = 2", false,
       1.0 / 1000},
      {"NOT p", "1-F = 0.9", "NOT B = 1", false, 0.9},
  };

  Header("TABLE 1 — selectivity factors: paper formula vs estimate vs data");
  std::printf("%-34s %-30s %10s %10s %10s\n", "predicate class",
              "paper formula", "paper F", "est. F", "measured");
  for (const Case& c : cases) {
    double est = EstimatedF(&db, c);
    double meas = MeasuredFraction(&db, c);
    std::printf("%-34s %-30s %10.5f %10.5f %10.5f\n", c.rule, c.formula,
                c.expected, est, meas);
  }
  std::printf(
      "\nNote: estimates must equal the paper column exactly (the formulas\n"
      "are deterministic); 'measured' shows how close the Table-1 model is\n"
      "to the true fraction on uniform synthetic data. Defaults (1/10, 1/3,\n"
      "1/4, 1/2) intentionally differ from the data — they are the paper's\n"
      "guesses for when statistics cannot help.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace systemr

int main() { return systemr::bench::Main(); }
