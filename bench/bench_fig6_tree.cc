// E6 — Figure 6 reproduction: the three-relation level of the search tree
// and the winning plan for the example join, executed to verify the choice.
#include <cstdio>

#include "bench_common.h"
#include "workload/datagen.h"

namespace systemr {
namespace bench {
namespace {

constexpr const char* kFig1Sql =
    "SELECT NAME, TITLE, SAL, DNAME "
    "FROM EMP, DEPT, JOB "
    "WHERE TITLE = 'CLERK' AND LOC = 'DENVER' "
    "AND EMP.DNO = DEPT.DNO AND EMP.JOB = JOB.JOB";

int Main() {
  Database db(256);
  DataGen gen(&db, 1979);
  Die(gen.LoadPaperExample(20000, 100, 50));

  auto h = Harness::Make(&db, kFig1Sql);
  uint32_t full = (1u << h->block->tables.size()) - 1;

  Header("Figure 6 — complete (three-relation) solutions");
  const auto& sols = h->enumerator->SolutionsFor(full);
  for (const JoinSolution& s : sols) {
    std::printf("  C = %10.1f  order=%-10s N=%-8.1f %s\n", s.cost,
                OrderSpecToString(s.order).c_str(), s.rows,
                s.describe.c_str());
  }

  JoinSolution best = Unwrap(h->enumerator->Best({}, {}));
  Header("Winning solution");
  std::printf("%s  (estimated cost %.1f)\n\n", best.describe.c_str(),
              best.cost);
  std::printf("%s", ExplainPlan(best.plan, *h->block).c_str());

  // Execute every stored complete solution and verify the estimate ranking
  // against reality — a small preview of the §7 accuracy study (E7).
  Header("Estimated vs actual cost for each stored complete solution");
  std::printf("%10s %12s   %s\n", "est. cost", "actual cost", "solution");
  double best_actual = -1;
  double chosen_actual = -1;
  for (const JoinSolution& s : sols) {
    ExecResult exec = ExecuteCold(&db, *h->block, s.plan);
    double actual = exec.stats.ActualCost(db.options().cost.w);
    std::printf("%10.1f %12.1f   %s\n", s.cost, actual, s.describe.c_str());
    if (best_actual < 0 || actual < best_actual) best_actual = actual;
    if (s.describe == best.describe) chosen_actual = actual;
  }
  if (chosen_actual >= 0 && best_actual > 0) {
    std::printf("\nchosen plan actual cost / best stored actual cost = %.2f\n",
                chosen_actual / best_actual);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace systemr

int main() { return systemr::bench::Main(); }
