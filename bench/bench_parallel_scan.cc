// BENCH 8 — morsel-driven parallel speedup (scan / join / aggregation).
//
//   bench_parallel_scan [--out PATH] [--iters N]
//
// One fact table (~20k rows, well over a hundred heap pages) is scanned,
// joined against a small dimension, and aggregated at PARALLEL 1/2/4/8 in
// the paper's I/O-bound regime: the buffer pool holds a fraction of the
// working set and every miss pays a simulated device read (a sleep taken
// with the pool latch released, so concurrent workers overlap their waits —
// the same mechanism BENCH 5 uses for multi-session scaling, applied here
// to morsels of a single statement). Each iteration starts from a cold
// pool, so wall-clock is dominated by the fetches the exchange divides
// across its workers.
//
// Speedups are reported against the embedded pre-exchange serial baseline
// (measured at the commit before the parallel executor landed; dop=1 plans
// are byte-identical to that serial optimizer's) and against the live dop=1
// run of the same binary. The headline acceptance number is
// speedup_dop4_join_vs_baseline (>= 2.5 required).
//
// Writes BENCH_8.json with mean / p50 / p95 / p99 latency per mode plus the
// achieved worker and morsel counts from the statement's ExecStats.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "session/session.h"

namespace systemr {
namespace bench {
namespace {

constexpr int kFactRows = 20000;
constexpr size_t kPoolPages = 32;       // Working set is ~150 heap pages.
constexpr uint32_t kIoLatencyUs = 100;  // Simulated device read.
const int kDops[] = {1, 2, 4, 8};

struct Workload {
  const char* name;
  const char* sql;
  // Pre-exchange serial mean latency (microseconds) in this exact regime,
  // measured at the commit before the parallel executor landed. The serial
  // plan and executor path for these statements did not change, so the live
  // dop=1 numbers below should land near these.
  double baseline_serial_us;
};

const Workload kWorkloads[] = {
    {"scan", "SELECT A, B FROM BIG WHERE B < 10", 25275.0},
    {"join",
     "SELECT DIM.V, COUNT(*) FROM BIG, DIM "
     "WHERE BIG.B = DIM.K GROUP BY DIM.V",
     26505.0},
    {"agg", "SELECT B, COUNT(*), SUM(A) FROM BIG GROUP BY B", 25227.0},
};

struct ModeResult {
  std::string workload;
  int dop = 1;
  size_t rows = 0;
  uint64_t workers = 0;  // From the last iteration's ExecStats.
  uint64_t morsels = 0;
  double mean_us = 0, p50_us = 0, p95_us = 0, p99_us = 0;
};

double Percentile(const std::vector<double>& sorted, double q) {
  size_t idx = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

ModeResult RunMode(Database* db, const Workload& w, int dop, int iters) {
  Session session(db);
  session.set_max_dop(dop);
  // Pin the requested dop: this bench measures executor scaling at fixed
  // dop, not the cost model's choice (that policy is covered by the
  // optimizer tests).
  session.set_force_parallel(dop > 1);
  PreparedStatement stmt = Unwrap(session.Prepare(w.sql));

  ModeResult r;
  r.workload = w.name;
  r.dop = dop;
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(iters));
  for (int i = 0; i < iters; ++i) {
    db->rss().pool().FlushAll();  // Cold pool: every page pays the device.
    auto t0 = std::chrono::steady_clock::now();
    QueryResult result = Unwrap(stmt.Execute());
    auto t1 = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
    r.rows = result.rows.size();
    r.workers = result.stats.parallel_workers;
    r.morsels = result.stats.parallel_morsels;
  }
  std::sort(samples.begin(), samples.end());
  for (double s : samples) r.mean_us += s;
  r.mean_us /= static_cast<double>(samples.size());
  r.p50_us = Percentile(samples, 0.50);
  r.p95_us = Percentile(samples, 0.95);
  r.p99_us = Percentile(samples, 0.99);
  return r;
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_8.json";
  int iters = 15;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr, "usage: bench_parallel_scan [--out PATH] "
                           "[--iters N]\n");
      return 2;
    }
  }

  Database db(kPoolPages);
  // Heap-only tables: morsel fragments drive segment scans, and the equi
  // join must hash (a nested loop over an index-less inner would drown the
  // measurement; merge would serialize behind its sorts).
  db.options().join.force = JoinMethodForce::kHash;
  Die(db.ExecuteScript(R"(
    CREATE TABLE BIG (A INT, B INT);
    CREATE TABLE DIM (K INT, V STRING);
  )"));
  for (int k = 0; k < 100; ++k) {
    Die(db.Execute("INSERT INTO DIM VALUES (" + std::to_string(k) + ", 'V" +
                   std::to_string(k) + "')"));
  }
  for (int i = 0; i < kFactRows; ++i) {
    Die(db.Execute("INSERT INTO BIG VALUES (" + std::to_string(i) + ", " +
                   std::to_string(i % 100) + ")"));
  }
  Die(db.Execute("UPDATE STATISTICS BIG"));
  Die(db.Execute("UPDATE STATISTICS DIM"));
  db.rss().pool().set_sim_fetch_latency_us(kIoLatencyUs);

  Header("BENCH 8 — morsel-driven parallel speedup (I/O-bound, cold pool)");
  std::printf("pool %zu pages, %u us/fetch, %d iterations/mode, "
              "%u hardware threads\n\n",
              kPoolPages, kIoLatencyUs, iters,
              std::thread::hardware_concurrency());
  std::printf("%-6s | %3s | %7s | %9s %9s %9s %9s | %7s %7s | %8s %8s\n",
              "wl", "dop", "rows", "mean_us", "p50_us", "p95_us", "p99_us",
              "workers", "morsels", "vs_dop1", "vs_base");

  std::vector<ModeResult> results;
  for (const Workload& w : kWorkloads) {
    double dop1_mean = 0;
    for (int dop : kDops) {
      ModeResult r = RunMode(&db, w, dop, iters);
      if (dop == 1) dop1_mean = r.mean_us;
      std::printf(
          "%-6s | %3d | %7zu | %9.0f %9.0f %9.0f %9.0f | %7llu %7llu "
          "| %7.2fx %7.2fx\n",
          r.workload.c_str(), r.dop, r.rows, r.mean_us, r.p50_us, r.p95_us,
          r.p99_us, (unsigned long long)r.workers,
          (unsigned long long)r.morsels, dop1_mean / r.mean_us,
          w.baseline_serial_us / r.mean_us);
      results.push_back(std::move(r));
    }
  }

  auto mean_of = [&](const std::string& wl, int dop) {
    for (const ModeResult& r : results) {
      if (r.workload == wl && r.dop == dop) return r.mean_us;
    }
    return 0.0;
  };
  auto baseline_of = [&](const std::string& wl) {
    for (const Workload& w : kWorkloads) {
      if (wl == w.name) return w.baseline_serial_us;
    }
    return 0.0;
  };
  double headline = baseline_of("join") / mean_of("join", 4);
  std::printf("\nspeedup at dop=4 vs pre-exchange serial baseline: "
              "scan %.2fx, join %.2fx, agg %.2fx\n",
              baseline_of("scan") / mean_of("scan", 4), headline,
              baseline_of("agg") / mean_of("agg", 4));

  std::string out = "{\n  \"bench\": \"parallel_scan\",\n";
  out += "  \"fact_rows\": " + std::to_string(kFactRows) + ",\n";
  out += "  \"pool_pages\": " + std::to_string(kPoolPages) + ",\n";
  out += "  \"io_latency_us\": " + std::to_string(kIoLatencyUs) + ",\n";
  out += "  \"iters_per_mode\": " + std::to_string(iters) + ",\n";
  out += "  \"hardware_threads\": " +
         std::to_string(std::thread::hardware_concurrency()) + ",\n";
  out += "  \"modes\": [\n";
  char buf[512];
  for (size_t i = 0; i < results.size(); ++i) {
    const ModeResult& r = results[i];
    std::snprintf(
        buf, sizeof buf,
        "    {\"workload\": \"%s\", \"dop\": %d, \"rows\": %zu, "
        "\"workers\": %llu, \"morsels\": %llu, \"mean_us\": %.0f, "
        "\"p50_us\": %.0f, \"p95_us\": %.0f, \"p99_us\": %.0f, "
        "\"speedup_vs_dop1\": %.2f, \"speedup_vs_baseline\": %.2f}%s\n",
        r.workload.c_str(), r.dop, r.rows, (unsigned long long)r.workers,
        (unsigned long long)r.morsels, r.mean_us, r.p50_us, r.p95_us,
        r.p99_us, mean_of(r.workload, 1) / r.mean_us,
        baseline_of(r.workload) / r.mean_us,
        i + 1 < results.size() ? "," : "");
    out += buf;
  }
  out += "  ],\n";
  std::snprintf(buf, sizeof buf,
                "  \"baseline_serial_us\": {\"scan\": %.0f, \"join\": %.0f, "
                "\"agg\": %.0f},\n"
                "  \"speedup_dop4_join_vs_baseline\": %.2f\n",
                baseline_of("scan"), baseline_of("join"), baseline_of("agg"),
                headline);
  out += buf;
  out += "}\n";

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 2;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("report: %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace systemr

int main(int argc, char** argv) { return systemr::bench::Main(argc, argv); }
