// E7 — §7 accuracy claims: "although the costs predicted by the optimizer
// are often not accurate in absolute value, the true optimal path is
// selected in a large majority of cases. In many cases, the ordering among
// the estimated costs is precisely the same as that among the actual
// measured costs."
//
// Method: random single-table and join queries over a synthetic chain
// schema. For each query, every candidate plan (all single-relation access
// paths, or all stored complete join solutions plus the baseline plans) is
// executed cold; we report how often the optimizer's choice is truly
// optimal, the mean actual-cost ratio to the true optimum, and the Spearman
// rank correlation between estimated and actual costs.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "optimizer/access_path_gen.h"
#include "workload/querygen.h"

namespace systemr {
namespace bench {
namespace {

struct Candidate {
  double est = 0;
  double actual = 0;
  bool chosen = false;
};

double SpearmanRho(const std::vector<Candidate>& cands) {
  size_t n = cands.size();
  auto ranks = [&](auto key) {
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i) idx[i] = i;
    std::stable_sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
      return key(cands[a]) < key(cands[b]);
    });
    std::vector<double> rank(n);
    for (size_t r = 0; r < n; ++r) rank[idx[r]] = static_cast<double>(r);
    return rank;
  };
  std::vector<double> re = ranks([](const Candidate& c) { return c.est; });
  std::vector<double> ra = ranks([](const Candidate& c) { return c.actual; });
  double d2 = 0;
  for (size_t i = 0; i < n; ++i) d2 += (re[i] - ra[i]) * (re[i] - ra[i]);
  double nn = static_cast<double>(n);
  return 1.0 - 6.0 * d2 / (nn * (nn * nn - 1.0));
}

struct Tally {
  int queries = 0;
  int optimal = 0;
  int near_optimal = 0;  // Within 10% of the true best.
  double ratio_sum = 0;
  double rho_sum = 0;
  int rho_count = 0;
  int identical_ordering = 0;

  void Account(std::vector<Candidate>& cands) {
    if (cands.empty()) return;
    ++queries;
    double best_actual = cands[0].actual;
    double chosen_actual = -1;
    for (const Candidate& c : cands) {
      best_actual = std::min(best_actual, c.actual);
      if (c.chosen) chosen_actual = c.actual;
    }
    if (chosen_actual < 0) return;
    if (chosen_actual <= best_actual * 1.01) ++optimal;
    if (chosen_actual <= best_actual * 1.10) ++near_optimal;
    ratio_sum += chosen_actual / std::max(best_actual, 1e-9);
    if (cands.size() >= 3) {
      double rho = SpearmanRho(cands);
      rho_sum += rho;
      ++rho_count;
      // "the ordering among the estimated costs is precisely the same".
      std::vector<Candidate> by_est = cands;
      std::stable_sort(by_est.begin(), by_est.end(),
                       [](const Candidate& a, const Candidate& b) {
                         return a.est < b.est;
                       });
      bool same = std::is_sorted(by_est.begin(), by_est.end(),
                                 [](const Candidate& a, const Candidate& b) {
                                   return a.actual < b.actual;
                                 });
      if (same) ++identical_ordering;
    }
  }

  void Print(const char* label) const {
    std::printf("%-22s %4d queries | optimal: %5.1f%% | within 10%%: %5.1f%% "
                "| mean cost-vs-best: %.3fx | Spearman rho: %.3f | identical "
                "ranking: %5.1f%%\n",
                label, queries, 100.0 * optimal / std::max(queries, 1),
                100.0 * near_optimal / std::max(queries, 1),
                ratio_sum / std::max(queries, 1),
                rho_sum / std::max(rho_count, 1),
                100.0 * identical_ordering / std::max(rho_count, 1));
  }
};

int Main() {
  Database db(128);
  ChainSchemaSpec spec;
  spec.num_tables = 4;
  spec.base_rows = 6000;
  spec.shrink = 0.5;
  Die(BuildChainSchema(&db, spec, 99));
  QueryGen qgen(spec, 4242);
  double w = db.options().cost.w;

  Header("E7 — optimizer accuracy (paper §7)");

  // --- Single-relation queries: every access path is a candidate ---
  Tally single;
  for (int q = 0; q < 60; ++q) {
    std::string sql = qgen.RandomSingleTableQuery();
    auto h = Harness::Make(&db, sql, {}, /*run=*/false);
    if (h->block->tables.size() != 1) continue;
    auto paths = GenerateAccessPaths(h->ctx, 0, 0);
    // The optimizer's choice is the cheapest estimated path.
    size_t chosen = 0;
    for (size_t i = 1; i < paths.size(); ++i) {
      if (paths[i].cost.cost < paths[chosen].cost.cost) chosen = i;
    }
    std::vector<Candidate> cands;
    for (size_t i = 0; i < paths.size(); ++i) {
      ExecResult exec = ExecuteCold(&db, *h->block, paths[i].node);
      cands.push_back(Candidate{paths[i].cost.cost,
                                exec.stats.ActualCost(w), i == chosen});
    }
    single.Account(cands);
  }
  single.Print("single-relation:");

  // --- Join queries: every stored complete solution is a candidate ---
  for (int tables = 2; tables <= 3; ++tables) {
    Tally joins;
    for (int q = 0; q < 25; ++q) {
      std::string sql = qgen.RandomJoinQuery(tables);
      auto h = Harness::Make(&db, sql);
      uint32_t full = (1u << h->block->tables.size()) - 1;
      JoinSolution best = Unwrap(h->enumerator->Best({}, {}));
      std::vector<Candidate> cands;
      for (const JoinSolution& s : h->enumerator->SolutionsFor(full)) {
        ExecResult exec = ExecuteCold(&db, *h->block, s.plan);
        cands.push_back(Candidate{s.cost, exec.stats.ActualCost(w),
                                  s.describe == best.describe});
      }
      joins.Account(cands);
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%d-way joins:", tables);
    joins.Print(label);
  }

  std::printf(
      "\nPaper claim: optimal in 'a large majority of cases'; estimated\n"
      "orderings often 'precisely the same' as actual. Expect the optimal\n"
      "rate well above 50%% and rho near 1.0.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace systemr

int main() { return systemr::bench::Main(); }
