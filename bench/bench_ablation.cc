// E9 — design ablations: the full System R optimizer vs
//   (a) DP without interesting orders (forces re-sorts),
//   (b) DP without the merge-scan join method,
//   (c) DP without the Cartesian-deferral heuristic (same plans, more work),
//   (d) greedy smallest-intermediate ordering,
//   (e) syntactic FROM-order nested loops (the "no optimizer" baseline),
// measured as total estimated and total metered actual cost over a fixed
// random workload.
#include <cstdio>

#include "bench_common.h"
#include "workload/querygen.h"

namespace systemr {
namespace bench {
namespace {

struct Strategy {
  const char* name;
  bool baseline = false;
  BaselineKind baseline_kind = BaselineKind::kGreedy;
  OptimizerOptions options;
};

int Main() {
  Database db(128);
  ChainSchemaSpec spec;
  spec.num_tables = 4;
  spec.base_rows = 6000;
  spec.shrink = 0.5;
  Die(BuildChainSchema(&db, spec, 31));

  // Fixed workload: a mix of single-table, 2-way, and 3-way queries.
  QueryGen qgen(spec, 123);
  std::vector<std::string> workload;
  for (int i = 0; i < 10; ++i) workload.push_back(qgen.RandomSingleTableQuery());
  for (int i = 0; i < 10; ++i) workload.push_back(qgen.RandomJoinQuery(2));
  for (int i = 0; i < 8; ++i) workload.push_back(qgen.RandomJoinQuery(3));

  std::vector<Strategy> strategies;
  {
    Strategy s;
    s.name = "full optimizer (paper)";
    s.options = db.options();
    strategies.push_back(s);
    s.name = "no interesting orders";
    s.options = db.options();
    s.options.join.use_interesting_orders = false;
    strategies.push_back(s);
    s.name = "no merge join";
    s.options = db.options();
    s.options.join.enable_merge_join = false;
    strategies.push_back(s);
    s.name = "no cartesian heuristic";
    s.options = db.options();
    s.options.join.cartesian_heuristic = false;
    strategies.push_back(s);
    s.name = "greedy ordering";
    s.options = db.options();
    s.baseline = true;
    s.baseline_kind = BaselineKind::kGreedy;
    strategies.push_back(s);
    s.name = "syntactic nested loops";
    s.options = db.options();
    s.baseline = true;
    s.baseline_kind = BaselineKind::kSyntacticNestedLoop;
    strategies.push_back(s);
  }

  Header("E9 — ablations over a 28-query workload");
  std::printf("%-26s %14s %14s %12s\n", "strategy", "total est.",
              "total actual", "vs full");
  double w = db.options().cost.w;
  double full_actual = 0;
  size_t reference_rows = 0;
  bool first = true;
  for (const Strategy& strat : strategies) {
    double est = 0, actual = 0;
    size_t rows = 0;
    for (const std::string& sql : workload) {
      OptimizedQuery q =
          strat.baseline
              ? Unwrap(db.PrepareBaseline(sql, strat.baseline_kind))
              : [&] {
                  Binder binder(&db.catalog());
                  auto stmt = Unwrap(Parse(sql));
                  auto block = Unwrap(binder.Bind(*stmt.select));
                  Optimizer opt(&db.catalog(), strat.options);
                  return Unwrap(opt.Optimize(std::move(block)));
                }();
      ExecResult exec =
          ExecuteCold(&db, *q.block, q.root, &q.subquery_plans);
      est += q.est_cost;
      actual += exec.stats.ActualCost(w);
      rows += exec.rows.size();
    }
    if (first) {
      full_actual = actual;
      reference_rows = rows;
      first = false;
    }
    if (rows != reference_rows) {
      std::printf("!! %s returned %zu rows, expected %zu\n", strat.name, rows,
                  reference_rows);
      return 1;
    }
    std::printf("%-26s %14.1f %14.1f %11.2fx\n", strat.name, est, actual,
                actual / full_actual);
  }
  std::printf(
      "\nAll strategies returned identical row counts (plan correctness).\n"
      "Expected shape: the full optimizer is cheapest; dropping interesting\n"
      "orders or merge joins costs moderately; greedy is usually close;\n"
      "syntactic nested loops is far worse. The no-heuristic DP matches the\n"
      "full optimizer's cost (it only searches more).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace systemr

int main() { return systemr::bench::Main(); }
