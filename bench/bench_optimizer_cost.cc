// E8 — §7 optimization-cost claims: "for a two-way join, the cost of
// optimization is approximately equivalent to between 5 and 20 database
// retrievals"; "joins of 8 tables have been optimized in a few seconds";
// "typical cases require only a few thousand bytes of storage"; the number
// of stored solutions is bounded by 2^n times the number of interesting
// orders.
//
// Uses google-benchmark for the timing sweep (n = 2..8 relations, heuristic
// on/off) after printing the search-size table.
#include <chrono>
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "workload/querygen.h"

namespace systemr {
namespace bench {
namespace {

Database* g_db = nullptr;
ChainSchemaSpec g_spec;

std::string JoinSql(int n) {
  std::string sql = "SELECT R0.PK FROM ";
  for (int i = 0; i < n; ++i) {
    if (i > 0) sql += ", ";
    sql += "R" + std::to_string(i);
  }
  sql += " WHERE R0.A = 3";
  for (int i = 0; i + 1 < n; ++i) {
    sql += " AND R" + std::to_string(i) + ".FK = R" + std::to_string(i + 1) +
           ".PK";
  }
  return sql;
}

void SetUpDatabase() {
  static Database db(128);
  g_spec.num_tables = 8;
  g_spec.base_rows = 3000;
  g_spec.shrink = 0.7;
  Die(BuildChainSchema(&db, g_spec, 7));
  g_db = &db;
}

void BM_Optimize(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  bool heuristic = state.range(1) != 0;
  std::string sql = JoinSql(n);
  OptimizerOptions options = g_db->options();
  options.join.cartesian_heuristic = heuristic;
  for (auto _ : state) {
    auto h = Harness::Make(g_db, sql,
                           options.join);  // Parse + bind + enumerate.
    benchmark::DoNotOptimize(h.get());
  }
}
BENCHMARK(BM_Optimize)
    ->ArgsProduct({{2, 3, 4, 5, 6, 7, 8}, {1}})
    ->ArgNames({"tables", "heuristic"})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Optimize)
    ->ArgsProduct({{4, 6, 8}, {0}})
    ->ArgNames({"tables", "heuristic"})
    ->Unit(benchmark::kMillisecond);

void PrintSearchTable() {
  Header("E8 — search size and time vs number of relations");
  std::printf("%7s | %10s %10s %10s %9s %12s | %12s\n", "tables", "stored",
              "generated", "subsets", "bytes", "time(ms)", "2^n*orders");
  for (int n = 2; n <= 8; ++n) {
    std::string sql = JoinSql(n);
    auto t0 = std::chrono::steady_clock::now();
    auto h = Harness::Make(g_db, sql);
    auto t1 = std::chrono::steady_clock::now();
    double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    size_t bound =
        (1u << n) * (h->enumerator->interesting_orders().size() + 1);
    std::printf("%7d | %10zu %10zu %10zu %9zu %12.2f | %12zu\n", n,
                h->enumerator->solutions_stored(),
                h->enumerator->solutions_generated(),
                h->enumerator->subsets_expanded(),
                h->enumerator->ApproxBytes(), ms, bound);
  }

  // "Equivalent database retrievals": time one single-tuple fetch through
  // the full execution stack and express the 2-way optimization time in
  // that unit.
  auto probe = Unwrap(g_db->Prepare("SELECT PK FROM R0 WHERE PK = 123"));
  double probe_ms = 0;
  const int kProbeReps = 200;
  for (int i = 0; i < kProbeReps; ++i) {
    g_db->rss().pool().FlushAll();
    auto t0 = std::chrono::steady_clock::now();
    auto r = g_db->Run(probe);
    auto t1 = std::chrono::steady_clock::now();
    Die(r.status());
    probe_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
  }
  probe_ms /= kProbeReps;

  double opt2_ms = 0;
  const int kOptReps = 50;
  for (int i = 0; i < kOptReps; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    auto h = Harness::Make(g_db, JoinSql(2));
    auto t1 = std::chrono::steady_clock::now();
    opt2_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
  }
  opt2_ms /= kOptReps;

  std::printf(
      "\n2-way join: optimize = %.3f ms, one indexed tuple retrieval = %.3f "
      "ms\n  → optimization ≈ %.1f database retrievals "
      "(paper: 5–20)\n",
      opt2_ms, probe_ms, opt2_ms / probe_ms);

  Header("Heuristic ablation (Cartesian-product deferral)");
  std::printf("%7s | %14s %14s | %14s %14s\n", "tables", "stored(on)",
              "stored(off)", "generated(on)", "generated(off)");
  for (int n = 3; n <= 8; ++n) {
    auto on = Harness::Make(g_db, JoinSql(n));
    JoinEnumerator::Options off_opt;
    off_opt.cartesian_heuristic = false;
    auto off = Harness::Make(g_db, JoinSql(n), off_opt);
    std::printf("%7d | %14zu %14zu | %14zu %14zu\n", n,
                on->enumerator->solutions_stored(),
                off->enumerator->solutions_stored(),
                on->enumerator->solutions_generated(),
                off->enumerator->solutions_generated());
  }
}

}  // namespace
}  // namespace bench
}  // namespace systemr

int main(int argc, char** argv) {
  systemr::bench::SetUpDatabase();
  systemr::bench::PrintSearchTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
