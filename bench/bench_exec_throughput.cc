// bench_exec_throughput — wall-clock executor throughput (BENCH_6.json).
//
// The paper's COST formula charges W per RSI call on the assumption that the
// CPU side of a call is a small constant (§4). This bench measures what that
// constant actually is for our executor, in nanoseconds per tuple, on five
// workloads over the synthetic chain catalog:
//
//   scan  — segment scan of R0 with a non-sargable residual predicate, so
//           every tuple pays one RSI call plus expression evaluation;
//   join  — three-way FK=PK join with a cross-table residual, exercising the
//           per-outer-row inner rebind and the composite-row path;
//   subq  — correlated scalar-aggregate subquery re-evaluated per distinct
//           outer value (§6);
//   ujoin — equi-join on the unindexed B columns: no useful order exists on
//           either side, so the plan choice is sort-both-and-merge versus
//           hash join;
//   agg   — GROUP BY on the unindexed B column: sort-then-group versus hash
//           aggregation.
//
// Each workload is prepared once and executed repeatedly for a fixed
// minimum wall time; the report records output rows/sec and ns per RSI
// tuple. Numbers are machine-dependent: the trajectory across PRs (and the
// recorded pre-PR baselines) is the signal, not the absolute values.
//
//   bench_exec_throughput [--out PATH] [--min-ms N]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "workload/querygen.h"

namespace systemr {
namespace bench {
namespace {

// Reference numbers measured with this bench at 600 ms/workload on the
// CI-class container that produced EXPERIMENTS.md. Two generations are kept
// so every BENCH_6.json carries the full trajectory:
//   - kPr2Baseline: the PR 2 tuple-at-a-time executor (the BENCH_3 origin);
//   - kPrePrBaseline: the engine immediately before this PR (rebindable
//     operators + compiled predicates, no batches, no hash operators) — the
//     denominator for this PR's speedup claims.
struct BaselineRef {
  const char* name;
  double rows_per_sec;
  double ns_per_tuple;
};
constexpr BaselineRef kPr2Baseline[] = {
    {"scan", 656658.9, 463.1},
    {"join", 47317.2, 3022.2},
    {"subq", 1051.4, 229.8},
};
constexpr BaselineRef kPrePrBaseline[] = {
    {"scan", 1465346.3, 207.5},
    {"join", 171779.6, 832.5},
    {"subq", 1921.9, 125.7},
    {"ujoin", 4249469.8, 1986.7},
    {"agg", 7298.8, 685.0},
};

struct WorkloadResult {
  std::string name;
  std::string sql;
  std::string plan;
  uint64_t iters = 0;
  uint64_t rows_per_iter = 0;
  uint64_t rsi_per_iter = 0;
  uint64_t subquery_evals_per_iter = 0;
  double wall_ms = 0;
  double rows_per_sec = 0;
  double tuples_per_sec = 0;
  double ns_per_tuple = 0;
};

std::string PlanSummary(const PlanRef& node) {
  if (node == nullptr) return "";
  std::string s = PlanKindName(node->kind);
  std::string l = PlanSummary(node->left);
  std::string r = PlanSummary(node->right);
  if (!l.empty() || !r.empty()) {
    s += "(" + l;
    if (!r.empty()) s += "," + r;
    s += ")";
  }
  return s;
}

WorkloadResult RunWorkload(Database* db, const std::string& name,
                           const std::string& sql, int min_ms) {
  WorkloadResult res;
  res.name = name;
  res.sql = sql;
  OptimizedQuery q = Unwrap(db->Prepare(sql));
  res.plan = PlanSummary(q.root);

  // Warm-up run (also captures the per-iteration counters).
  ExecResult warm = ExecuteCold(db, *q.block, q.root, &q.subquery_plans);
  res.rows_per_iter = warm.rows.size();
  res.rsi_per_iter = warm.stats.rsi_calls;
  res.subquery_evals_per_iter = warm.stats.subquery_evals;

  using Clock = std::chrono::steady_clock;
  auto start = Clock::now();
  auto deadline = start + std::chrono::milliseconds(min_ms);
  uint64_t iters = 0;
  do {
    ExecResult r = ExecuteCold(db, *q.block, q.root, &q.subquery_plans);
    if (r.rows.size() != res.rows_per_iter) {
      std::fprintf(stderr, "unstable result size in %s\n", name.c_str());
      std::abort();
    }
    ++iters;
  } while (Clock::now() < deadline);
  double ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
  res.iters = iters;
  res.wall_ms = ns / 1e6;
  double per_iter_ns = ns / static_cast<double>(iters);
  res.rows_per_sec =
      static_cast<double>(res.rows_per_iter) * 1e9 / per_iter_ns;
  res.tuples_per_sec =
      static_cast<double>(res.rsi_per_iter) * 1e9 / per_iter_ns;
  res.ns_per_tuple =
      res.rsi_per_iter == 0
          ? 0
          : per_iter_ns / static_cast<double>(res.rsi_per_iter);
  return res;
}

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

int Main(int argc, char** argv) {
  std::string out_path = "BENCH_6.json";
  std::string only;  // Empty = all workloads.
  int min_ms = 600;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--min-ms") == 0 && i + 1 < argc) {
      min_ms = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--only") == 0 && i + 1 < argc) {
      only = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_exec_throughput [--out PATH] [--min-ms N] "
                   "[--only WORKLOAD]\n");
      return 2;
    }
  }

  Database db(256);
  ChainSchemaSpec spec;
  spec.num_tables = 3;
  spec.base_rows = 20000;
  spec.shrink = 0.5;
  spec.a_domain = 100;
  spec.b_domain = 100;
  Die(BuildChainSchema(&db, spec, 1979));

  const struct {
    const char* name;
    const char* sql;
  } kWorkloads[] = {
      // Non-sargable residual (arithmetic + OR) over every R0 tuple.
      {"scan",
       "SELECT R0.PK, R0.A, R0.B FROM R0 "
       "WHERE R0.A + R0.B < 60 OR R0.B BETWEEN 5 AND 25"},
      // Three-way FK=PK chain join with a cross-table residual per pair.
      {"join",
       "SELECT R0.PK, R2.A FROM R0, R1, R2 "
       "WHERE R0.FK = R1.PK AND R1.FK = R2.PK AND R0.A + R2.B < 70"},
      // Correlated scalar-aggregate subquery (§6), one evaluation per
      // distinct outer FK (the same-value cache absorbs repeats).
      {"subq",
       "SELECT X.PK FROM R1 X "
       "WHERE X.B <= (SELECT MAX(R2.A) FROM R2 WHERE R2.PK = X.FK)"},
      // Equi-join on B (unindexed on both sides): no access path delivers
      // join-column order, so merge must sort both inputs — the case where
      // hash join's no-order build/probe wins.
      {"ujoin",
       "SELECT R1.PK, R2.PK FROM R1, R2 "
       "WHERE R1.B = R2.B AND R1.A < 10"},
      // GROUP BY on B (unindexed): sort-then-group versus hash aggregation.
      {"agg",
       "SELECT R0.B, COUNT(*), SUM(R0.A) FROM R0 GROUP BY R0.B"},
  };

  Header("BENCH 6 — executor wall-clock throughput");
  std::printf("%6s | %10s %9s %8s | %12s %12s %9s\n", "wkld", "rows/iter",
              "rsi/iter", "iters", "rows/sec", "tuples/sec", "ns/tuple");

  std::vector<WorkloadResult> results;
  for (const auto& w : kWorkloads) {
    if (!only.empty() && only != w.name) continue;
    WorkloadResult r = RunWorkload(&db, w.name, w.sql, min_ms);
    std::printf("%6s | %10llu %9llu %8llu | %12s %12s %9s\n", r.name.c_str(),
                (unsigned long long)r.rows_per_iter,
                (unsigned long long)r.rsi_per_iter,
                (unsigned long long)r.iters, Num(r.rows_per_sec).c_str(),
                Num(r.tuples_per_sec).c_str(), Num(r.ns_per_tuple).c_str());
    results.push_back(std::move(r));
  }

  std::string out = "{\n  \"bench\": \"exec_throughput\",\n";
  out += "  \"min_ms_per_workload\": " + std::to_string(min_ms) + ",\n";
  out += "  \"workloads\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const WorkloadResult& r = results[i];
    out += "    {\"name\": \"" + r.name + "\"";
    out += ", \"plan\": \"" + r.plan + "\"";
    out += ", \"iters\": " + std::to_string(r.iters);
    out += ", \"rows_per_iter\": " + std::to_string(r.rows_per_iter);
    out += ", \"rsi_calls_per_iter\": " + std::to_string(r.rsi_per_iter);
    out += ", \"subquery_evals_per_iter\": " +
           std::to_string(r.subquery_evals_per_iter);
    out += ", \"wall_ms\": " + Num(r.wall_ms);
    out += ", \"rows_per_sec\": " + Num(r.rows_per_sec);
    out += ", \"tuples_per_sec\": " + Num(r.tuples_per_sec);
    out += ", \"ns_per_tuple\": " + Num(r.ns_per_tuple);
    out += "}";
    out += i + 1 < results.size() ? ",\n" : "\n";
  }
  auto emit_baselines = [&](const char* key, const BaselineRef* refs,
                            size_t n) {
    out += "  \"" + std::string(key) + "\": [\n";
    for (size_t i = 0; i < n; ++i) {
      const BaselineRef& b = refs[i];
      out += "    {\"name\": \"" + std::string(b.name) + "\"";
      out += ", \"rows_per_sec\": " + Num(b.rows_per_sec);
      out += ", \"ns_per_tuple\": " + Num(b.ns_per_tuple);
      out += "}";
      out += i + 1 < n ? ",\n" : "\n";
    }
    out += "  ]";
  };
  out += "  ],\n";
  emit_baselines("baseline_pre_pr", kPrePrBaseline,
                 sizeof kPrePrBaseline / sizeof kPrePrBaseline[0]);
  out += ",\n";
  emit_baselines("baseline_pr2", kPr2Baseline,
                 sizeof kPr2Baseline / sizeof kPr2Baseline[0]);
  out += "\n}\n";

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 2;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("\nreport: %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace systemr

int main(int argc, char** argv) { return systemr::bench::Main(argc, argv); }
