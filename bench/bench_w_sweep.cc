// E11 — the W weighting factor (§4): "COST = PAGE FETCHES + W*(RSI CALLS).
// W is an adjustable weighting factor between I/O and CPU." And §7: "many
// queries are CPU-bound, particularly merge joins for which temporary
// relations are created and sorts performed."
//
// Sweeps W and reports, for a fixed workload, which access paths and join
// methods the optimizer picks and the resulting metered I/O and RSI calls.
// As W grows, plans that minimize tuple traffic (selective index paths,
// SARG-heavy scans) must win over plans that only minimize page fetches.
#include <cstdio>
#include <functional>

#include "bench_common.h"
#include "workload/querygen.h"

namespace systemr {
namespace bench {
namespace {

int Main() {
  Database db(128);
  ChainSchemaSpec spec;
  spec.num_tables = 3;
  spec.base_rows = 8000;
  spec.shrink = 0.5;
  Die(BuildChainSchema(&db, spec, 55));

  QueryGen qgen(spec, 808);
  std::vector<std::string> workload;
  for (int i = 0; i < 12; ++i) workload.push_back(qgen.RandomSingleTableQuery());
  for (int i = 0; i < 8; ++i) workload.push_back(qgen.RandomJoinQuery(2));

  Header("E11 — W sweep: COST = PAGE FETCHES + W * RSI CALLS");
  std::printf("%8s | %10s %10s %12s | %9s %9s %9s\n", "W", "tot.pages",
              "tot.RSI", "tot.cost", "segscan", "index", "mergejoin");

  for (double w : {0.0, 0.01, 0.1, 0.5, 2.0, 10.0}) {
    db.options().cost.w = w;
    uint64_t pages = 0, rsi = 0;
    double cost = 0;
    int seg = 0, idx = 0, mj = 0;
    for (const std::string& sql : workload) {
      OptimizedQuery q = Unwrap(db.Prepare(sql));
      // Count plan-node kinds in the chosen plan.
      std::function<void(const PlanRef&)> walk = [&](const PlanRef& n) {
        if (n == nullptr) return;
        if (n->kind == PlanKind::kSegScan) ++seg;
        if (n->kind == PlanKind::kIndexScan) ++idx;
        if (n->kind == PlanKind::kMergeJoin) ++mj;
        walk(n->left);
        walk(n->right);
      };
      walk(q.root);
      ExecResult exec = ExecuteCold(&db, *q.block, q.root, &q.subquery_plans);
      pages += exec.stats.page_io();
      rsi += exec.stats.rsi_calls;
      cost += exec.stats.ActualCost(w);
    }
    std::printf("%8.2f | %10llu %10llu %12.1f | %9d %9d %9d\n", w,
                (unsigned long long)pages, (unsigned long long)rsi, cost, seg,
                idx, mj);
  }
  db.options().cost.w = 0.1;
  std::printf(
      "\nReading: total RSI calls are fixed by the query semantics for the\n"
      "returned tuples, but the optimizer shifts from page-fetch-minimizing\n"
      "plans (low W) toward plans whose SARGs and index keys reject tuples\n"
      "below the RSI (high W) — the paper's motivation for counting CPU in\n"
      "the cost formula at all.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace systemr

int main() { return systemr::bench::Main(); }
